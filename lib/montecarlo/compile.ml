open Pqdb_urel

type node =
  | Const of float
  | Res of int
  | Sum of (float * node) array
  | IndepOr of node array

type t = {
  root : node;
  residuals : Dnf.t array;
  res_weights : float array;  (* per residual: Σ path weights, ∂P/∂p̂ᵢ ≤ wᵢ *)
  fallback : Dnf.t option;
      (* the whole normalized DNF, prepared, when residuals exist: [solve]
         reverts to it when the residual budgets are worse than sampling the
         original problem (Shannon truncation can duplicate clauses across
         leaves, inflating Σ|Fᵢ| past |F|). *)
}

let default_fuel = 4096

let compile ?(fuel = default_fuel) w clauses =
  let residuals = ref [] in
  let nres = ref 0 in
  let fuel = ref fuel in
  let residual cs =
    let i = !nres in
    incr nres;
    residuals := Dnf.prepare w cs :: !residuals;
    Res i
  in
  let normalized = Lineage.normalize clauses in
  let rec go clauses =
    match Lineage.normalize clauses with
    | [] -> Const 0.
    | [ c ] -> Const (Assignment.weight_float w c)
    | cs when !fuel <= 0 -> residual cs
    | cs -> (
        match Lineage.components cs with
        | _ :: _ :: _ as comps ->
            IndepOr (Array.of_list (List.map go comps))
        | _ -> (
            match Lineage.universal_var cs with
            | Some v ->
                (* Disjoint-OR: the branches v = x are mutually exclusive
                   and every clause shrinks, so expansion is free (no
                   Shannon fuel) and terminates on binding count alone. *)
                expand v cs
            | None -> (
                match Lineage.most_shared_var cs with
                | None -> assert false (* nonempty clauses have variables *)
                | Some v ->
                    fuel := !fuel - Wtable.domain_size w v - List.length cs;
                    expand v cs)))
  and expand v cs =
    let n = Wtable.domain_size w v in
    Sum
      (Array.init n (fun x ->
           (Wtable.prob_float w v x, go (Lineage.condition cs v x))))
  in
  let root = go normalized in
  let residuals = Array.of_list (List.rev !residuals) in
  let res_weights = Array.make (Array.length residuals) 0. in
  let rec walk pw = function
    | Const _ -> ()
    | Res i -> res_weights.(i) <- res_weights.(i) +. pw
    | Sum branches -> Array.iter (fun (wx, c) -> walk (pw *. wx) c) branches
    | IndepOr children -> Array.iter (walk pw) children
  in
  walk 1. root;
  let fallback =
    if Array.length residuals = 0 then None
    else if Array.length residuals = 1 && res_weights.(0) = 1. then
      (* The tree IS one residual (e.g. fuel 0): no separate fallback. *)
      None
    else Some (Dnf.prepare w normalized)
  in
  { root; residuals; res_weights; fallback }

let residuals t = t.residuals
let residual_count t = Array.length t.residuals
let residual_weights t = Array.copy t.res_weights
let is_exact t = residual_count t = 0

let rec eval_node vals = function
  | Const p -> p
  | Res i -> vals.(i)
  | Sum branches ->
      Array.fold_left
        (fun acc (w, c) -> acc +. (w *. eval_node vals c))
        0. branches
  | IndepOr children ->
      1.
      -. Array.fold_left
           (fun acc c -> acc *. (1. -. eval_node vals c))
           1. children

let value t vals =
  if Array.length vals <> Array.length t.residuals then
    invalid_arg "Compile.value: one estimate per residual expected";
  eval_node vals t.root

let exact_value t = if is_exact t then Some (eval_node [||] t.root) else None

(* Count nodes for diagnostics/tests. *)
let size t =
  let rec go = function
    | Const _ | Res _ -> 1
    | Sum bs -> Array.fold_left (fun acc (_, c) -> acc + go c) 1 bs
    | IndepOr cs -> Array.fold_left (fun acc c -> acc + go c) 1 cs
  in
  go t.root

type outcome = {
  value : float;
  trials : int;
  residual_mass : float;
  lo : float;
  hi : float;
  achieved_eps : float;
  complete : bool;
}

(* Worst-case estimator calls to answer [dnf] at relative [eps], failure
   [delta] — the fixed Chernoff budget the adaptive sampler is capped at. *)
let cost_cap dnf ~eps ~delta =
  if Dnf.is_trivially_false dnf || Dnf.is_trivially_true dnf then 0
  else if Dnf.clause_count dnf = 1 then 0
  else Pqdb_numeric.Stats.karp_luby_trials ~clauses:(Dnf.clause_count dnf) ~eps ~delta

let residual_ub dnf = Float.min 1. (Dnf.total_weight dnf)

let vacuous_interval t =
  if is_exact t then
    let v = eval_node [||] t.root in
    (v, v)
  else
    (* The monotone tree at the residual extremes: the lower endpoint is the
       exact compiled mass — what the tuple is worth with every residual
       written off — and the upper endpoint charges each residual its full
       a-priori mass min(1, Mᵢ). *)
    let zeros = Array.map (fun _ -> 0.) t.residuals in
    let ubs = Array.map residual_ub t.residuals in
    ( Float.max 0. (eval_node zeros t.root),
      Float.min 1. (eval_node ubs t.root) )

(* Per-residual sampling result: estimate, sound probability interval,
   relative error certified at the residual's δ share (0 = exact, infinity =
   vacuous), and whether the residual's own (ε, δ) ask was met. *)
type rres = { r_est : float; r_lo : float; r_hi : float; r_eps : float; r_ok : bool }

let r_vacuous dnf =
  { r_est = 0.; r_lo = 0.; r_hi = residual_ub dnf; r_eps = Float.infinity; r_ok = false }

let r_point p = { r_est = p; r_lo = p; r_hi = p; r_eps = 0.; r_ok = true }

let r_certified dnf ~eps p =
  let ub = residual_ub dnf in
  { r_est = p;
    r_lo = Float.max 0. (p /. (1. +. eps));
    r_hi = (if eps >= 1. then ub else Float.min ub (p /. (1. -. eps)));
    r_eps = eps;
    r_ok = true }

(* One contained adaptive pass over a residual.  Any estimator failure
   (injected or real) degrades that residual to its vacuous interval instead
   of aborting the tuple. *)
let sample_residual rng trials dnf ~eps ~delta =
  match Karp_luby.adaptive rng dnf ~eps ~delta with
  | p, n ->
      trials := !trials + n;
      if n = 0 then r_point p else r_certified dnf ~eps p
  | exception _ -> r_vacuous dnf

(* Returns (per-residual results, trials, complete): [complete] means the
   pass certifies the root at relative [eps] (error propagation lemma +
   union bound, or the exact-mass tightening argument below). *)
let solve_residuals rng t ~eps ~delta =
  let r = Array.length t.residuals in
  let trials = ref 0 in
  if eps >= 0.5 then begin
    (* Coarse target: a single adaptive pass per residual at (eps, δ/r)
       already meets the guarantee (error propagation lemma + union
       bound). *)
    let d = delta /. float_of_int r in
    let rrs = Array.map (fun dnf -> sample_residual rng trials dnf ~eps ~delta:d) t.residuals in
    (rrs, !trials, Array.for_all (fun rr -> rr.r_ok) rrs)
  end
  else begin
    (* Exact-mass tightening.  Phase 1: coarse (ε₁ = ½) estimates of every
       residual, spending δ/2r each.  They yield, with probability
       ≥ 1 − δ/2:
         T_lo = value(p̂/1.5)   ≤ true tuple confidence   (monotone tree)
         S_hi = 1.5·Σ wᵢ·p̂ᵢ    ≥ Σ wᵢ·pᵢ                  (sensitivity)
       Since |Δvalue| ≤ Σ wᵢ·|Δpᵢ| (the path weights bound the partial
       derivatives of the multilinear tree), sampling every residual at
       relative ε₂ keeps the tuple error ≤ ε₂·Σwᵢpᵢ ≤ ε₂·S_hi.  So
       ε₂ = ε·T_lo/S_hi suffices for a relative-ε answer — the exact mass
       already in T_lo buys a looser, cheaper residual target.  Phase 2
       re-samples at (max ε ε₂, δ/2r); if ε₂ ≥ ½ the phase-1 estimates
       are already good enough and phase 2 is skipped.  A residual that
       failed in phase 1 contributes 0 to both bounds and is not
       re-sampled; one that fails in phase 2 keeps its (coarser) phase-1
       certificate.  Either failure voids the root's ε contract
       ([complete = false]) but never its interval. *)
    let eps1 = 0.5 in
    let d = delta /. 2. /. float_of_int r in
    let p1 =
      Array.map (fun dnf -> sample_residual rng trials dnf ~eps:eps1 ~delta:d) t.residuals
    in
    let t_lo = eval_node (Array.map (fun rr -> rr.r_lo) p1) t.root in
    (* Per-residual absolute-error capacity a_i ≥ w_i·p_i (w.h.p.): sampling
       residual i at relative ε_i contributes ≤ a_i·ε_i to the root's
       absolute error.  Failed residuals are excluded (they void the ε
       contract anyway and are not re-sampled). *)
    let a =
      Array.mapi
        (fun i rr ->
          if rr.r_ok then (1. +. eps1) *. t.res_weights.(i) *. rr.r_est else 0.)
        p1
    in
    let s_hi = Array.fold_left ( +. ) 0. a in
    let e_total = eps *. t_lo in
    if s_hi <= 0. || e_total >= eps1 *. s_hi then
      (* Even a uniform ε₁ target fits inside ε·T_lo (or nothing was
         sampled): the coarse pass already certifies the root at ε. *)
      (p1, !trials, Array.for_all (fun rr -> rr.r_ok) p1)
    else begin
      (* Weight-aware targets.  Σ a_i·ε_i ≤ E = ε·T_lo keeps the root
         within relative ε (absolute error ≤ Σ w_i·p_i·ε_i ≤ Σ a_i·ε_i ≤
         ε·T_lo ≤ ε·v).  Under that constraint the trial spend Σ K_i/ε_i²
         (K_i = clause count, the Chernoff cost scale) is minimized by
         ε_i ∝ (K_i/a_i)^⅓ — cheap-but-heavy residuals get tight targets,
         expensive-but-light ones looser — instead of the uniform
         ε₂ = E/Σa_i split.  Targets are clamped to [ε, ε₁]: at ε₁ the
         phase-1 certificate already suffices (no re-sample); a target
         floored up to ε still charges a_i·ε against E (water-filling
         redistributes the rest), and when even the all-ε floor overruns E
         the allocation falls back to uniform ε — sound by the error
         propagation lemma alone, exactly the pre-weighted behaviour. *)
      let targets = Array.make r eps1 in
      if e_total <= eps *. s_hi then
        Array.iteri (fun i rr -> if rr.r_ok then targets.(i) <- eps) p1
      else begin
        let shape =
          Array.mapi
            (fun i rr ->
              if (not rr.r_ok) || a.(i) <= 0. then 0.
              else
                Float.pow
                  (float_of_int (Dnf.clause_count t.residuals.(i)) /. a.(i))
                  (1. /. 3.))
            p1
        in
        let floored = Array.make r false in
        let rec fill () =
          let e_free = ref e_total and denom = ref 0. in
          Array.iteri
            (fun i rr ->
              if rr.r_ok && a.(i) > 0. then
                if floored.(i) then e_free := !e_free -. (a.(i) *. eps)
                else denom := !denom +. (a.(i) *. shape.(i)))
            p1;
          if !denom > 0. then
            if !e_free <= 0. then
              (* infeasible: floor everything — the ε fallback below *)
              Array.iteri
                (fun i rr ->
                  if rr.r_ok && a.(i) > 0. then floored.(i) <- true)
                p1
            else begin
              let c = !e_free /. !denom in
              let changed = ref false in
              Array.iteri
                (fun i rr ->
                  if rr.r_ok && a.(i) > 0. && not floored.(i) then begin
                    let e_i = c *. shape.(i) in
                    if e_i < eps then begin
                      floored.(i) <- true;
                      changed := true
                    end
                    else targets.(i) <- Float.min eps1 e_i
                  end)
                p1;
              if !changed then fill ()
            end
        in
        fill ();
        Array.iteri (fun i f -> if f then targets.(i) <- eps) floored
      end;
      let rrs =
        Array.mapi
          (fun i rr1 ->
            if not rr1.r_ok then rr1
            else if targets.(i) >= eps1 then rr1
            else
              let rr2 =
                sample_residual rng trials t.residuals.(i) ~eps:targets.(i)
                  ~delta:d
              in
              if rr2.r_ok then rr2 else rr1)
          p1
      in
      let complete = ref true in
      Array.iteri
        (fun i rr -> if not (rr.r_ok && rr.r_eps <= targets.(i)) then complete := false)
        rrs;
      (rrs, !trials, !complete)
    end
  end

(* Assemble the tuple outcome from per-residual results.  The interval
   always holds with probability ≥ 1 − δ: the monotone tree maps sound
   per-residual intervals to a sound root interval, and on a complete pass
   the relative-ε claim [v/(1+ε), v/(1−ε)] is intersected in. *)
let assemble t rrs ~eps ~trials ~complete =
  let v = eval_node (Array.map (fun rr -> rr.r_est) rrs) t.root in
  let lo_tree = eval_node (Array.map (fun rr -> rr.r_lo) rrs) t.root in
  let hi_tree = eval_node (Array.map (fun rr -> rr.r_hi) rrs) t.root in
  let lo = Float.max 0. lo_tree and hi = Float.min 1. hi_tree in
  let lo, hi =
    if complete then
      ( Float.max lo (v /. (1. +. eps)),
        if eps >= 1. then hi else Float.min hi (v /. (1. -. eps)) )
    else (lo, hi)
  in
  let mass = ref 0. in
  Array.iteri (fun i rr -> mass := !mass +. (t.res_weights.(i) *. rr.r_est)) rrs;
  let achieved_eps =
    if complete then eps
    else Array.fold_left (fun acc rr -> Float.max acc rr.r_eps) 0. rrs
  in
  { value = v;
    trials;
    residual_mass = Float.min v !mass;
    lo;
    hi = Float.max lo hi;
    achieved_eps;
    complete }

let exact_outcome v =
  { value = v; trials = 0; residual_mass = 0.; lo = v; hi = v;
    achieved_eps = 0.; complete = true }

(* The truncation-guard path samples the whole normalized DNF instead of the
   residual leaves; the compiled tree still brackets the answer when that
   sampling fails or runs out of budget. *)
let fallback_outcome t partial =
  let open Karp_luby in
  let tree_lo, tree_hi = vacuous_interval t in
  let lo = Float.max tree_lo partial.p_lo
  and hi = Float.min tree_hi partial.p_hi in
  { value = partial.p_estimate;
    trials = partial.p_trials;
    residual_mass = partial.p_estimate;
    lo;
    hi = Float.max lo hi;
    achieved_eps = partial.p_eps;
    complete = partial.p_complete }

let solve ?budget rng t ~eps ~delta =
  if eps <= 0. || delta <= 0. then invalid_arg "Compile.solve";
  let r = Array.length t.residuals in
  if r = 0 then exact_outcome (eval_node [||] t.root)
  else begin
    (* Truncation guard: Shannon cut-off can leave residual leaves whose
       combined worst-case budget exceeds just sampling the original DNF
       (clauses get duplicated across branches).  Compare the caps and take
       whichever problem is cheaper — compilation must pay for itself. *)
    let compiled_cap =
      let d = delta /. 2. /. float_of_int r in
      Array.fold_left
        (fun acc dnf -> acc + cost_cap dnf ~eps ~delta:d)
        0 t.residuals
    in
    let plain_cap =
      match t.fallback with
      | Some dnf -> cost_cap dnf ~eps ~delta
      | None -> max_int
    in
    if plain_cap < compiled_cap then begin
      let dnf = Option.get t.fallback in
      match Karp_luby.adaptive_partial ?budget rng dnf ~eps ~delta with
      | partial -> fallback_outcome t partial
      | exception _ ->
          (* Sampling the fallback died outright: all that remains sound is
             the compiled bracket. *)
          let lo, hi = vacuous_interval t in
          { value = lo; trials = 0; residual_mass = 0.; lo; hi;
            achieved_eps = (hi -. lo) /. 2.; complete = false }
    end
    else
      match budget with
      | None ->
          let rrs, trials, complete = solve_residuals rng t ~eps ~delta in
          assemble t rrs ~eps ~trials ~complete
      | Some _ ->
          (* Budget-governed: one partial pass per residual at (ε, δ/r),
             all charging the shared governor.  Residuals past the deadline
             come back with whatever interval their trials certify. *)
          let d = delta /. float_of_int r in
          let trials = ref 0 in
          let rrs =
            Array.map
              (fun dnf ->
                match Karp_luby.adaptive_partial ?budget rng dnf ~eps ~delta:d with
                | p ->
                    trials := !trials + p.Karp_luby.p_trials;
                    { r_est = p.Karp_luby.p_estimate;
                      r_lo = p.Karp_luby.p_lo;
                      r_hi = p.Karp_luby.p_hi;
                      r_eps = p.Karp_luby.p_eps;
                      r_ok = p.Karp_luby.p_complete }
                | exception _ -> r_vacuous dnf)
              t.residuals
          in
          let complete = Array.for_all (fun rr -> rr.r_ok) rrs in
          assemble t rrs ~eps ~trials:!trials ~complete
  end

let confidence ?fuel rng w clauses ~eps ~delta =
  (solve rng (compile ?fuel w clauses) ~eps ~delta).value
