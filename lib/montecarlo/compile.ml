open Pqdb_urel

type node =
  | Const of float
  | Res of int
  | Sum of (float * node) array
  | IndepOr of node array

type t = {
  root : node;
  residuals : Dnf.t array;
  res_weights : float array;  (* per residual: Σ path weights, ∂P/∂p̂ᵢ ≤ wᵢ *)
  fallback : Dnf.t option;
      (* the whole normalized DNF, prepared, when residuals exist: [solve]
         reverts to it when the residual budgets are worse than sampling the
         original problem (Shannon truncation can duplicate clauses across
         leaves, inflating Σ|Fᵢ| past |F|). *)
}

let default_fuel = 4096

let compile ?(fuel = default_fuel) w clauses =
  let residuals = ref [] in
  let nres = ref 0 in
  let fuel = ref fuel in
  let residual cs =
    let i = !nres in
    incr nres;
    residuals := Dnf.prepare w cs :: !residuals;
    Res i
  in
  let normalized = Lineage.normalize clauses in
  let rec go clauses =
    match Lineage.normalize clauses with
    | [] -> Const 0.
    | [ c ] -> Const (Assignment.weight_float w c)
    | cs when !fuel <= 0 -> residual cs
    | cs -> (
        match Lineage.components cs with
        | _ :: _ :: _ as comps ->
            IndepOr (Array.of_list (List.map go comps))
        | _ -> (
            match Lineage.universal_var cs with
            | Some v ->
                (* Disjoint-OR: the branches v = x are mutually exclusive
                   and every clause shrinks, so expansion is free (no
                   Shannon fuel) and terminates on binding count alone. *)
                expand v cs
            | None -> (
                match Lineage.most_shared_var cs with
                | None -> assert false (* nonempty clauses have variables *)
                | Some v ->
                    fuel := !fuel - Wtable.domain_size w v - List.length cs;
                    expand v cs)))
  and expand v cs =
    let n = Wtable.domain_size w v in
    Sum
      (Array.init n (fun x ->
           (Wtable.prob_float w v x, go (Lineage.condition cs v x))))
  in
  let root = go normalized in
  let residuals = Array.of_list (List.rev !residuals) in
  let res_weights = Array.make (Array.length residuals) 0. in
  let rec walk pw = function
    | Const _ -> ()
    | Res i -> res_weights.(i) <- res_weights.(i) +. pw
    | Sum branches -> Array.iter (fun (wx, c) -> walk (pw *. wx) c) branches
    | IndepOr children -> Array.iter (walk pw) children
  in
  walk 1. root;
  let fallback =
    if Array.length residuals = 0 then None
    else if Array.length residuals = 1 && res_weights.(0) = 1. then
      (* The tree IS one residual (e.g. fuel 0): no separate fallback. *)
      None
    else Some (Dnf.prepare w normalized)
  in
  { root; residuals; res_weights; fallback }

let residuals t = t.residuals
let residual_count t = Array.length t.residuals
let residual_weights t = Array.copy t.res_weights
let is_exact t = residual_count t = 0

let rec eval_node vals = function
  | Const p -> p
  | Res i -> vals.(i)
  | Sum branches ->
      Array.fold_left
        (fun acc (w, c) -> acc +. (w *. eval_node vals c))
        0. branches
  | IndepOr children ->
      1.
      -. Array.fold_left
           (fun acc c -> acc *. (1. -. eval_node vals c))
           1. children

let value t vals =
  if Array.length vals <> Array.length t.residuals then
    invalid_arg "Compile.value: one estimate per residual expected";
  eval_node vals t.root

let exact_value t = if is_exact t then Some (eval_node [||] t.root) else None

(* Count nodes for diagnostics/tests. *)
let size t =
  let rec go = function
    | Const _ | Res _ -> 1
    | Sum bs -> Array.fold_left (fun acc (_, c) -> acc + go c) 1 bs
    | IndepOr cs -> Array.fold_left (fun acc c -> acc + go c) 1 cs
  in
  go t.root

type outcome = { value : float; trials : int; residual_mass : float }

(* Worst-case estimator calls to answer [dnf] at relative [eps], failure
   [delta] — the fixed Chernoff budget the adaptive sampler is capped at. *)
let cost_cap dnf ~eps ~delta =
  if Dnf.is_trivially_false dnf || Dnf.is_trivially_true dnf then 0
  else if Dnf.clause_count dnf = 1 then 0
  else Pqdb_numeric.Stats.karp_luby_trials ~clauses:(Dnf.clause_count dnf) ~eps ~delta

let solve_residuals rng t ~eps ~delta =
  let r = Array.length t.residuals in
  let trials = ref 0 in
  let vals =
    if eps >= 0.5 then begin
      (* Coarse target: a single adaptive pass per residual at (eps, δ/r)
         already meets the guarantee (error propagation lemma + union
         bound). *)
      let d = delta /. float_of_int r in
      Array.map
        (fun dnf ->
          let p, n = Karp_luby.adaptive rng dnf ~eps ~delta:d in
          trials := !trials + n;
          p)
        t.residuals
    end
    else begin
      (* Exact-mass tightening.  Phase 1: coarse (ε₁ = ½) estimates of every
         residual, spending δ/2r each.  They yield, with probability
         ≥ 1 − δ/2:
           T_lo = value(p̂/1.5)   ≤ true tuple confidence   (monotone tree)
           S_hi = 1.5·Σ wᵢ·p̂ᵢ    ≥ Σ wᵢ·pᵢ                  (sensitivity)
         Since |Δvalue| ≤ Σ wᵢ·|Δpᵢ| (the path weights bound the partial
         derivatives of the multilinear tree), sampling every residual at
         relative ε₂ keeps the tuple error ≤ ε₂·Σwᵢpᵢ ≤ ε₂·S_hi.  So
         ε₂ = ε·T_lo/S_hi suffices for a relative-ε answer — the exact mass
         already in T_lo buys a looser, cheaper residual target.  Phase 2
         re-samples at (max ε ε₂, δ/2r); if ε₂ ≥ ½ the phase-1 estimates
         are already good enough and phase 2 is skipped. *)
      let eps1 = 0.5 in
      let d = delta /. 2. /. float_of_int r in
      let p1 =
        Array.map
          (fun dnf ->
            let p, n = Karp_luby.adaptive rng dnf ~eps:eps1 ~delta:d in
            trials := !trials + n;
            p)
          t.residuals
      in
      let t_lo =
        eval_node (Array.map (fun p -> p /. (1. +. eps1)) p1) t.root
      in
      let s_hi =
        (1. +. eps1)
        *. snd
             (Array.fold_left
                (fun (i, acc) p -> (i + 1, acc +. (t.res_weights.(i) *. p)))
                (0, 0.) p1)
      in
      let eps2 =
        if s_hi <= 0. then 1. else Float.max eps (eps *. t_lo /. s_hi)
      in
      if eps2 >= eps1 then p1
      else
        Array.map
          (fun dnf ->
            let p, n = Karp_luby.adaptive rng dnf ~eps:eps2 ~delta:d in
            trials := !trials + n;
            p)
          t.residuals
    end
  in
  (vals, !trials)

let solve rng t ~eps ~delta =
  if eps <= 0. || delta <= 0. then invalid_arg "Compile.solve";
  let r = Array.length t.residuals in
  if r = 0 then
    { value = eval_node [||] t.root; trials = 0; residual_mass = 0. }
  else begin
    (* Truncation guard: Shannon cut-off can leave residual leaves whose
       combined worst-case budget exceeds just sampling the original DNF
       (clauses get duplicated across branches).  Compare the caps and take
       whichever problem is cheaper — compilation must pay for itself. *)
    let compiled_cap =
      let d = delta /. 2. /. float_of_int r in
      Array.fold_left
        (fun acc dnf -> acc + cost_cap dnf ~eps ~delta:d)
        0 t.residuals
    in
    let plain_cap =
      match t.fallback with
      | Some dnf -> cost_cap dnf ~eps ~delta
      | None -> max_int
    in
    if plain_cap < compiled_cap then begin
      let dnf = Option.get t.fallback in
      let p, n = Karp_luby.adaptive rng dnf ~eps ~delta in
      { value = p; trials = n; residual_mass = p }
    end
    else begin
      let vals, trials = solve_residuals rng t ~eps ~delta in
      let v = eval_node vals t.root in
      let mass = ref 0. in
      Array.iteri
        (fun i p -> mass := !mass +. (t.res_weights.(i) *. p))
        vals;
      { value = v; trials; residual_mass = Float.min v !mass }
    end
  end

let confidence ?fuel rng w clauses ~eps ~delta =
  (solve rng (compile ?fuel w clauses) ~eps ~delta).value
