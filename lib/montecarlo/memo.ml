open Pqdb_urel

let default_entries = 256

(* One cached compiled tree.  [tick] is the LRU clock value of its last
   touch; [raw_keys] are the alias keys pointing at it, removed with it on
   eviction so the alias table cannot hold dangling references. *)
type node = {
  ckey : string;
  tree : Compile.t;
  mutable tick : int;
  mutable raw_keys : string list;
}

type t = {
  lock : Mutex.t;
  cap : int;
  nodes : (string, node) Hashtbl.t;  (* canonical key -> entry *)
  aliases : (string, string) Hashtbl.t;  (* raw key -> canonical key *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(entries = default_entries) () =
  if entries < 1 then invalid_arg "Memo.create: entries must be >= 1";
  {
    lock = Mutex.create ();
    cap = entries;
    nodes = Hashtbl.create (min entries 64);
    aliases = Hashtbl.create (min entries 64);
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.cap

(* Key syntax: "<level>:w<uid>:g<gen>:f<fuel>[:a<len>[<salt>]]:<clauses>"
   with clauses in the canonical D-column syntax, '|'-separated.  The level
   prefix keeps the raw and canonical namespaces from ever colliding (a raw
   key equal to some canonical key would otherwise alias the wrong entry).
   The salt segment — the active constraint-set fingerprint under
   conditioning — is length-prefixed so no salt content can forge another
   key's clause section, and elided entirely when empty so unconditioned
   keys are unchanged. *)
let key_of ~level ~fuel ~salt w rendered =
  let salt_seg =
    if salt = "" then ""
    else Printf.sprintf ":a%d[%s]" (String.length salt) salt
  in
  Printf.sprintf "%c:w%d:g%d:f%d%s:%s" level (Wtable.uid w)
    (Wtable.generation w) fuel salt_seg
    (String.concat "|" rendered)

let fuel_of = function Some f -> f | None -> Compile.default_fuel
let salt_of = function Some s -> s | None -> ""

(* The raw key sorts and dedups the clause renderings itself — cheaper than
   normalization (no subsumption pass) and enough to collapse permuted and
   duplicated clause lists. *)
let raw_key ~fuel ~salt w clauses =
  key_of ~level:'r' ~fuel ~salt w
    (List.sort_uniq String.compare
       (List.map Udb_io.condition_to_string clauses))

(* Lineage.normalize sorts its output (sort_uniq by Assignment.compare), so
   rendering in list order is already canonical. *)
let canonical_key ~fuel ~salt w clauses =
  key_of ~level:'c' ~fuel ~salt w
    (List.map Udb_io.condition_to_string (Lineage.normalize clauses))

let fingerprint ?fuel ?salt w clauses =
  canonical_key ~fuel:(fuel_of fuel) ~salt:(salt_of salt) w clauses

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let touch t node =
  t.clock <- t.clock + 1;
  node.tick <- t.clock

(* O(entries) scan for the oldest tick; runs only on an over-capacity
   insert, and the cap is small (hundreds), so a linked list would buy
   nothing measurable here. *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ node best ->
        match best with
        | Some b when b.tick <= node.tick -> best
        | _ -> Some node)
      t.nodes None
  in
  match victim with
  | None -> ()
  | Some node ->
      Hashtbl.remove t.nodes node.ckey;
      List.iter (Hashtbl.remove t.aliases) node.raw_keys;
      t.evictions <- t.evictions + 1

(* Alias-table bound: raw keys accumulate one per distinct non-normalized
   spelling of a cached set.  Past 4x the entry cap we flush the whole
   table — subsequent lookups re-alias through the canonical key, so the
   only cost is one normalization per live spelling. *)
let prune_aliases t =
  if Hashtbl.length t.aliases > 4 * t.cap then begin
    Hashtbl.reset t.aliases;
    Hashtbl.iter (fun _ node -> node.raw_keys <- []) t.nodes
  end

let add_alias t node raw =
  if not (List.mem raw node.raw_keys) then begin
    prune_aliases t;
    Hashtbl.replace t.aliases raw node.ckey;
    node.raw_keys <- raw :: node.raw_keys
  end

let find_or_compile t ?fuel ?salt ?build w clauses =
  let fuel = fuel_of fuel in
  let salt = salt_of salt in
  let raw = raw_key ~fuel ~salt w clauses in
  let fast =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.aliases raw with
        | Some ckey -> (
            match Hashtbl.find_opt t.nodes ckey with
            | Some node ->
                touch t node;
                t.hits <- t.hits + 1;
                Some node.tree
            | None ->
                (* Dangling alias (entry evicted out from under it, which
                   eviction prevents — but self-heal rather than trust). *)
                Hashtbl.remove t.aliases raw;
                None)
        | None -> None)
  in
  match fast with
  | Some tree -> tree
  | None -> (
      (* Normalize outside the lock: the subsumption pass is the expensive
         part of a canonical-key lookup and needs no cache state. *)
      let ckey = canonical_key ~fuel ~salt w clauses in
      let cached =
        with_lock t (fun () ->
            match Hashtbl.find_opt t.nodes ckey with
            | Some node ->
                touch t node;
                t.hits <- t.hits + 1;
                add_alias t node raw;
                Some node.tree
            | None -> None)
      in
      match cached with
      | Some tree -> tree
      | None ->
          (* Compile outside the lock (it can be seconds of work).  Two
             threads racing on the same cold key both compile; compilation
             is deterministic, so whichever inserts second just replaces an
             identical tree.  A caller-supplied [build] must be a pure
             function of the key's inputs (clauses + salt context) for the
             same reason. *)
          let tree =
            match build with
            | Some f -> f ()
            | None -> Compile.compile ~fuel w clauses
          in
          with_lock t (fun () ->
              t.misses <- t.misses + 1;
              (match Hashtbl.find_opt t.nodes ckey with
              | Some node -> touch t node; add_alias t node raw
              | None ->
                  if Hashtbl.length t.nodes >= t.cap then evict_lru t;
                  let node = { ckey; tree; tick = 0; raw_keys = [] } in
                  touch t node;
                  Hashtbl.replace t.nodes ckey node;
                  add_alias t node raw));
          tree)

type stats = { hits : int; misses : int; evictions : int; entries : int }

let stats t =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.nodes;
      })

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.nodes;
      Hashtbl.reset t.aliases)
