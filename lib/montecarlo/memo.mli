(** Compiled-lineage cache: skip {!Lineage.normalize} + {!Compile.compile}
    for clause sets the engine has seen before.

    {!Compile.compile} is a pure function of (W table, clause set, fuel), so
    its trees are safe to share across queries, sessions and threads: the
    serve daemon keys a bounded LRU on a {e canonical fingerprint} of those
    three inputs and answers repeated or incremental queries straight from
    {!Compile.solve} / {!Compile.value}, paying compilation once per
    distinct lineage.

    {2 Canonicalization}

    Two clause lists that denote the same DNF must hit the same entry.  The
    cache fingerprints at two levels:

    {ul
    {- a {e raw} key — the clause conditions rendered canonically
       ({!Pqdb_urel.Udb_io.condition_to_string}), sorted and deduplicated.
       Permutations and duplicate clauses collapse here for the cost of one
       sort, and a repeated query skips normalization {e entirely};}
    {- a {e canonical} key — the same rendering of
       {!Lineage.normalize}'s output (subsumed clauses dropped).  Clause
       sets equivalent only up to subsumption meet at this key; their raw
       keys are then aliased to it, so each variant pays normalization once.}}

    Both keys embed the W table's identity and generation
    ({!Pqdb_urel.Wtable.uid} / {!Pqdb_urel.Wtable.generation}) and the
    compilation fuel: any table edit, or a different fuel, changes every
    key, so a stale tree can never be served.

    {2 Salted (conditioned) entries}

    A caller conditioning on a constraint set caches trees whose value
    depends on more than the tuple's own clauses — the conjoined lineage
    under the active constraints.  The optional [salt] (the canonical
    constraint-set fingerprint, {!Pqdb_ast.Uconstraint.set_fingerprint},
    possibly suffixed by which conjunct is cached) is folded into {e both}
    keys, length-prefixed so salt content cannot forge another key: entries
    with different salts never alias, an unconditioned hit can never answer
    a conditioned query, and an empty salt leaves the key byte-identical to
    the pre-conditioning format.  [build] then supplies the salted tree (a
    pure function of the clauses and the salt's context); without it the
    plain {!Compile.compile} of the clauses is cached.

    {2 Bit-identity}

    A hit returns the {e same} tree a cold {!Compile.compile} of the same
    clause set would build ({!Lineage.normalize} sorts clauses, so
    compilation is order-insensitive to begin with); solving it against the
    same RNG state yields bit-identical ["%h"] outputs.  The serve CI job
    [cmp]s warm against cold stdout to hold this line.

    All operations are thread-safe (one internal lock). *)

open Pqdb_urel

val default_entries : int
(** Default entry cap (compiled trees held), currently 256. *)

type t

val create : ?entries:int -> unit -> t
(** An empty cache holding at most [entries] compiled trees (least
    recently used evicted first).  Alias keys are bounded separately (a few
    per entry on average) and flushed wholesale if they outgrow that bound.
    @raise Invalid_argument when [entries < 1]. *)

val capacity : t -> int

val fingerprint :
  ?fuel:int -> ?salt:string -> Wtable.t -> Assignment.t list -> string
(** The canonical key: W-table uid + generation, fuel, the salt (when
    nonempty), and the normalized clause set in canonical syntax.  Equal for
    permuted, duplicated or subsumption-equivalent clause lists; different
    after any W-table edit, under a different fuel, or under a different
    salt. *)

val find_or_compile :
  t ->
  ?fuel:int ->
  ?salt:string ->
  ?build:(unit -> Compile.t) ->
  Wtable.t ->
  Assignment.t list ->
  Compile.t
(** The cached {!Compile.compile} (or, when [build] is given, the cached
    [build ()] — see {e Salted entries} above).  A raw-key hit skips
    normalization and compilation; a canonical-key hit skips compilation; a
    miss compiles, inserts, and evicts the least recently used entry beyond
    capacity. *)

type stats = {
  hits : int;  (** raw- or canonical-key hits: compilation skipped *)
  misses : int;  (** cold compiles *)
  evictions : int;  (** entries dropped by the LRU bound *)
  entries : int;  (** compiled trees currently held *)
}

val stats : t -> stats

val clear : t -> unit
(** Drop every entry and alias (counters keep accumulating). *)
