type t = { nworkers : int }

let default_workers () = max 1 (Domain.recommended_domain_count ())

let create nworkers =
  if nworkers <= 0 then invalid_arg "Pool.create: nworkers must be positive";
  { nworkers }

let size t = t.nworkers

(* ------------------------------------------------------------------ *)
(* Resident workers                                                    *)
(* ------------------------------------------------------------------ *)

type job = {
  f : int -> unit;
  ntasks : int;
  chunk : int;
  allowed : int;  (* helper domains this job may use *)
  claimers : int Atomic.t;
  next : int Atomic.t;
  completed : int Atomic.t;
  failure : (int * exn * Printexc.raw_backtrace) option Atomic.t;
}

let lock = Mutex.create ()
let wake = Condition.create ()  (* workers: a job was posted *)
let finished = Condition.create ()  (* submitter: all tasks completed *)
let posted : (int * job) option ref = ref None
let seq = ref 0
let quit = ref false
let resident = ref [||]
let started = ref false

(* Serializes job submission; a submitter that cannot take it (nested or
   concurrent [run]) falls back to running its tasks inline. *)
let submit_lock = Mutex.create ()

(* Exceptions are contained per task, not per chunk: a failing task records
   (index, exn, backtrace) and the remaining tasks of the chunk — and of the
   job — still run, so one bad tuple cannot starve a batch. *)
let run_task job i =
  try
    Pqdb_runtime.Faultpoint.fire "pool.task";
    job.f i
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    ignore (Atomic.compare_and_set job.failure None (Some (i, e, bt)))

let reraise_failure = function
  | None -> ()
  | Some (i, e, bt) ->
      Printexc.raise_with_backtrace
        (Pqdb_runtime.Pqdb_error.(Error (Task_failure { index = i; inner = e })))
        bt

let run_chunk job lo hi =
  for i = lo to hi - 1 do
    run_task job i
  done;
  let n = hi - lo in
  if Atomic.fetch_and_add job.completed n + n >= job.ntasks then begin
    Mutex.lock lock;
    Condition.broadcast finished;
    Mutex.unlock lock
  end

let participate job =
  let rec claim () =
    let lo = Atomic.fetch_and_add job.next job.chunk in
    if lo < job.ntasks then begin
      run_chunk job lo (min job.ntasks (lo + job.chunk));
      claim ()
    end
  in
  claim ()

let worker_loop () =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock lock;
    let rec await () =
      if !quit then None
      else
        match !posted with
        | Some (s, job) when s <> !seen ->
            seen := s;
            Some job
        | _ ->
            Condition.wait wake lock;
            await ()
    in
    let next_job = await () in
    Mutex.unlock lock;
    match next_job with
    | None -> ()
    | Some job ->
        if Atomic.fetch_and_add job.claimers 1 < job.allowed then
          participate job;
        loop ()
  in
  loop ()

let resident_target () =
  let requested =
    match Sys.getenv_opt "PQDB_POOL_WORKERS" with
    | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> default_workers ())
    | None -> default_workers ()
  in
  max 0 (requested - 1)

let shutdown () =
  Mutex.lock lock;
  quit := true;
  Condition.broadcast wake;
  Mutex.unlock lock;
  Array.iter Domain.join !resident;
  resident := [||]

let exit_hook_registered = ref false

let ensure_started () =
  (* First call wins; [run] is serialized by [submit_lock] before any
     parallel submission, and a lost race only means an inline run. *)
  if not !started then begin
    started := true;
    let n = resident_target () in
    if n > 0 then begin
      (* [Domain.spawn] can fail (domain limit, resource exhaustion).  Keep
         whatever workers came up and degrade towards inline execution
         rather than failing the computation. *)
      let spawned = ref [] in
      (try
         for _ = 1 to n do
           Pqdb_runtime.Faultpoint.fire "pool.spawn";
           spawned := Domain.spawn worker_loop :: !spawned
         done
       with _ -> ());
      resident := Array.of_list !spawned;
      if Array.length !resident > 0 && not !exit_hook_registered then begin
        exit_hook_registered := true;
        at_exit shutdown
      end
    end
  end

(* Test hook: tear the resident workers down and forget that the pool ever
   started, so the next [run] re-evaluates PQDB_POOL_WORKERS and re-spawns
   (possibly through an armed "pool.spawn" fault point). *)
let reset () =
  Mutex.lock submit_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock submit_lock)
    (fun () ->
      shutdown ();
      Mutex.lock lock;
      quit := false;
      posted := None;
      Mutex.unlock lock;
      started := false)

let resident_workers () =
  ensure_started ();
  Array.length !resident

(* Inline execution honours the same contract as the parallel path: per-task
   containment, first failure re-raised as [Task_failure] after every task
   has had its chance to run. *)
let run_inline ~ntasks f =
  let job =
    {
      f;
      ntasks;
      chunk = ntasks;
      allowed = 0;
      claimers = Atomic.make 0;
      next = Atomic.make 0;
      completed = Atomic.make 0;
      failure = Atomic.make None;
    }
  in
  for i = 0 to ntasks - 1 do
    run_task job i
  done;
  reraise_failure (Atomic.get job.failure)

let run t ~ntasks f =
  if ntasks < 0 then invalid_arg "Pool.run: ntasks must be nonnegative";
  if ntasks > 0 then begin
    ensure_started ();
    let helpers =
      min (min (t.nworkers - 1) (Array.length !resident)) (ntasks - 1)
    in
    if helpers <= 0 then run_inline ~ntasks f
    else if not (Mutex.try_lock submit_lock) then run_inline ~ntasks f
    else
      Fun.protect
        ~finally:(fun () -> Mutex.unlock submit_lock)
        (fun () ->
          let chunk = max 1 (ntasks / ((helpers + 1) * 4)) in
          let job =
            {
              f;
              ntasks;
              chunk;
              allowed = helpers;
              claimers = Atomic.make 0;
              next = Atomic.make 0;
              completed = Atomic.make 0;
              failure = Atomic.make None;
            }
          in
          Mutex.lock lock;
          incr seq;
          posted := Some (!seq, job);
          Condition.broadcast wake;
          Mutex.unlock lock;
          participate job;
          Mutex.lock lock;
          while Atomic.get job.completed < ntasks do
            Condition.wait finished lock
          done;
          (* Free the job closure; workers treat [None] as nothing new. *)
          posted := None;
          Mutex.unlock lock;
          reraise_failure (Atomic.get job.failure))
  end
