type t = { nworkers : int }

let default_workers () = max 1 (Domain.recommended_domain_count ())

let create nworkers =
  if nworkers <= 0 then invalid_arg "Pool.create: nworkers must be positive";
  { nworkers }

let size t = t.nworkers

let run t ~ntasks f =
  if ntasks < 0 then invalid_arg "Pool.run: ntasks must be nonnegative";
  if ntasks > 0 then begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < ntasks then begin
          f i;
          loop ()
        end
      in
      loop ()
    in
    let spawned = min (t.nworkers - 1) (ntasks - 1) in
    let domains = Array.init spawned (fun _ -> Domain.spawn worker) in
    (* The calling domain participates; if its slice raises we must still
       join every spawned domain before re-raising. *)
    let parent_exn = (try worker (); None with e -> Some e) in
    let child_exn =
      Array.fold_left
        (fun acc d ->
          match (try Domain.join d; None with e -> Some e) with
          | Some _ as e when acc = None -> e
          | _ -> acc)
        None domains
    in
    match (parent_exn, child_exn) with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ()
  end
