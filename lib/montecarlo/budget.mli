(** Resource governor for anytime confidence computation.

    A budget carries up to three cooperative limits — a wall-clock deadline,
    a total estimator-trial budget, and a cancellation flag — and is
    threaded through the sampling layers ({!Karp_luby}, {!Compile.solve},
    {!Confidence.run}, top-k, predicate decisions).  Layers poll
    {!exhausted} inside their sampling loops and, on exhaustion, {e degrade
    instead of failing}: they stop sampling and report what the trials spent
    so far certify (a wider interval / a larger achieved ε), in the spirit
    of the paper's Section 6 treatment of unreliability as added
    uncertainty.

    A budget is shared: all tuples of a batch (across all pool domains)
    draw from the same trial pool and watch the same deadline.  All
    operations are atomic/lock-free and safe from worker domains.

    No-budget calls ([?budget] left [None]) take the exact pre-existing
    code paths — zero overhead, bit-identical results. *)

type t

val create : ?deadline_s:float -> ?max_trials:int -> unit -> t
(** [deadline_s] is relative wall-clock seconds from now; [max_trials]
    bounds the total estimator calls charged via {!spend}.  Omitting both
    yields a budget that only exhausts via {!cancel}.
    @raise Invalid_argument when [deadline_s <= 0] or [max_trials <= 0]. *)

val cancel : t -> unit
(** Cooperative cancellation: every subsequent {!exhausted} returns
    [true]. *)

val cancelled : t -> bool

val spend : t -> int -> unit
(** Charge [n] estimator trials against the budget. *)

val spent : t -> int
(** Total trials charged so far. *)

val remaining_trials : t -> int
(** Trials left before the trial budget exhausts ([max_int] when
    unlimited, [0] once cancelled — a cancelled budget has nothing left to
    grant whatever its cap); never negative. *)

val remaining_deadline : t -> float option
(** Wall-clock seconds until the deadline ([None] when there is none); may
    be negative once past it. *)

val limitless : t -> bool
(** [true] when the budget carries neither a deadline nor a trial cap — it
    can only exhaust via {!cancel}.  Schedulers share such a budget directly
    instead of splitting it, so cancellation propagates live. *)

val exhausted : t -> bool
(** [true] once the budget is cancelled, over its trial budget, or past its
    deadline.  The deadline check is sticky: once observed expired it stays
    expired, so a loop polling [exhausted] terminates promptly. *)

val allocate : trials:int -> costs:int array -> int array
(** Apportion a trial allowance over work items proportionally to their
    costs, {e exactly}: the returned shares always sum to [trials]
    (largest-remainder method — integer floors by cost share, then the
    remainder handed out by largest fractional part, lowest index on ties).
    When [trials >= Array.length costs] every item gets at least one trial;
    an all-zero cost vector spreads evenly.  Deterministic, pure — the
    distributed coordinator uses it to deal identical static slices no
    matter which worker runs which shard.
    @raise Invalid_argument on negative [trials] or any negative cost. *)

val split : t -> cost:int -> remaining_cost:int -> t
(** A fresh child budget granted the share [cost / remaining_cost] of the
    parent's {e remaining} trial and wall-clock allowance — the primitive
    behind budget-aware shard scheduling: walking a plan with
    [remaining_cost] the summed cost of the shards not yet run divides what
    is left proportionally instead of first-come-first-served.  Trial
    shares round to nearest and the closing share ([cost >= remaining_cost])
    takes the whole remainder, so over a full sequential schedule the
    shares sum to {e exactly} the remaining allowance — no trials are lost
    to truncation on the last shard.  Every live share is at least one
    trial (so a tiny shard can still certify something), which can
    oversubscribe by at most one trial per such shard; the per-shard
    re-split against the parent's live remainder self-corrects.  The child
    is independent once created (charge the parent with the trials actually
    used afterwards); an already exhausted parent yields a cancelled child.
    Trial-only splits are deterministic; deadline shares depend on the
    clock.
    @raise Invalid_argument when [remaining_cost < 1]. *)
