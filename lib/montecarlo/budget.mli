(** Resource governor for anytime confidence computation.

    A budget carries up to three cooperative limits — a wall-clock deadline,
    a total estimator-trial budget, and a cancellation flag — and is
    threaded through the sampling layers ({!Karp_luby}, {!Compile.solve},
    {!Confidence.run}, top-k, predicate decisions).  Layers poll
    {!exhausted} inside their sampling loops and, on exhaustion, {e degrade
    instead of failing}: they stop sampling and report what the trials spent
    so far certify (a wider interval / a larger achieved ε), in the spirit
    of the paper's Section 6 treatment of unreliability as added
    uncertainty.

    A budget is shared: all tuples of a batch (across all pool domains)
    draw from the same trial pool and watch the same deadline.  All
    operations are atomic/lock-free and safe from worker domains.

    No-budget calls ([?budget] left [None]) take the exact pre-existing
    code paths — zero overhead, bit-identical results. *)

type t

val create : ?deadline_s:float -> ?max_trials:int -> unit -> t
(** [deadline_s] is relative wall-clock seconds from now; [max_trials]
    bounds the total estimator calls charged via {!spend}.  Omitting both
    yields a budget that only exhausts via {!cancel}.
    @raise Invalid_argument when [deadline_s <= 0] or [max_trials <= 0]. *)

val cancel : t -> unit
(** Cooperative cancellation: every subsequent {!exhausted} returns
    [true]. *)

val cancelled : t -> bool

val spend : t -> int -> unit
(** Charge [n] estimator trials against the budget. *)

val spent : t -> int
(** Total trials charged so far. *)

val remaining_trials : t -> int
(** Trials left before the trial budget exhausts ([max_int] when
    unlimited); never negative. *)

val remaining_deadline : t -> float option
(** Wall-clock seconds until the deadline ([None] when there is none); may
    be negative once past it. *)

val limitless : t -> bool
(** [true] when the budget carries neither a deadline nor a trial cap — it
    can only exhaust via {!cancel}.  Schedulers share such a budget directly
    instead of splitting it, so cancellation propagates live. *)

val exhausted : t -> bool
(** [true] once the budget is cancelled, over its trial budget, or past its
    deadline.  The deadline check is sticky: once observed expired it stays
    expired, so a loop polling [exhausted] terminates promptly. *)

val split : t -> fraction:float -> t
(** A fresh child budget granted [fraction] (clamped to [[0,1]]) of the
    parent's {e remaining} trial and wall-clock allowance — the primitive
    behind budget-aware shard scheduling: giving shard [k] the fraction
    [cost_k / remaining_cost] divides what is left proportionally instead of
    first-come-first-served.  The child is independent once created (charge
    the parent with the trials actually used afterwards); an already
    exhausted parent yields a cancelled child.  Trial shares round up, so
    concurrent shares can oversubscribe the parent by at most one trial
    each — the per-shard re-split against the parent's live remainder
    self-corrects.  Trial-only splits are deterministic; deadline shares
    depend on the clock. *)
