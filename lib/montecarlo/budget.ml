type t = {
  deadline : float option;  (* absolute Unix time *)
  max_trials : int option;
  cancelled_flag : bool Atomic.t;
  trials : int Atomic.t;
  expired : bool Atomic.t;  (* sticky deadline observation *)
}

let create ?deadline_s ?max_trials () =
  (match deadline_s with
  | Some d when d <= 0. -> invalid_arg "Budget.create: deadline_s must be positive"
  | _ -> ());
  (match max_trials with
  | Some n when n <= 0 -> invalid_arg "Budget.create: max_trials must be positive"
  | _ -> ());
  {
    deadline = Option.map (fun d -> Unix.gettimeofday () +. d) deadline_s;
    max_trials;
    cancelled_flag = Atomic.make false;
    trials = Atomic.make 0;
    expired = Atomic.make false;
  }

let cancel t = Atomic.set t.cancelled_flag true
let cancelled t = Atomic.get t.cancelled_flag
let spend t n = if n > 0 then ignore (Atomic.fetch_and_add t.trials n)
let spent t = Atomic.get t.trials

let remaining_trials t =
  match t.max_trials with
  | None -> max_int
  | Some m -> max 0 (m - Atomic.get t.trials)

let past_deadline t =
  match t.deadline with
  | None -> false
  | Some d ->
      Atomic.get t.expired
      ||
      if Unix.gettimeofday () > d then begin
        Atomic.set t.expired true;
        true
      end
      else false

let remaining_deadline t =
  Option.map (fun d -> d -. Unix.gettimeofday ()) t.deadline

let limitless t = t.deadline = None && t.max_trials = None

let exhausted t =
  Atomic.get t.cancelled_flag
  || (match t.max_trials with
     | Some m -> Atomic.get t.trials >= m
     | None -> false)
  || past_deadline t

let split t ~fraction =
  let fraction = Float.max 0. (Float.min 1. fraction) in
  let dead () =
    let b = create () in
    cancel b;
    b
  in
  if exhausted t then dead ()
  else
    let deadline_s =
      match remaining_deadline t with
      | None -> None
      | Some rem -> Some (rem *. fraction)
    in
    let max_trials =
      match t.max_trials with
      | None -> None
      | Some _ ->
          Some
            (max 1
               (int_of_float
                  (ceil (float_of_int (remaining_trials t) *. fraction))))
    in
    match deadline_s with
    | Some s when s <= 0. -> dead ()
    | _ -> create ?deadline_s ?max_trials ()
