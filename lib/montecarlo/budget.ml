type t = {
  deadline : float option;  (* absolute Unix time *)
  max_trials : int option;
  cancelled_flag : bool Atomic.t;
  trials : int Atomic.t;
  expired : bool Atomic.t;  (* sticky deadline observation *)
}

let create ?deadline_s ?max_trials () =
  (match deadline_s with
  | Some d when d <= 0. -> invalid_arg "Budget.create: deadline_s must be positive"
  | _ -> ());
  (match max_trials with
  | Some n when n <= 0 -> invalid_arg "Budget.create: max_trials must be positive"
  | _ -> ());
  {
    deadline = Option.map (fun d -> Unix.gettimeofday () +. d) deadline_s;
    max_trials;
    cancelled_flag = Atomic.make false;
    trials = Atomic.make 0;
    expired = Atomic.make false;
  }

let cancel t = Atomic.set t.cancelled_flag true
let cancelled t = Atomic.get t.cancelled_flag
let spend t n = if n > 0 then ignore (Atomic.fetch_and_add t.trials n)
let spent t = Atomic.get t.trials

let remaining_trials t =
  match t.max_trials with
  | None -> max_int
  | Some m -> max 0 (m - Atomic.get t.trials)

let past_deadline t =
  match t.deadline with
  | None -> false
  | Some d ->
      Atomic.get t.expired
      ||
      if Unix.gettimeofday () > d then begin
        Atomic.set t.expired true;
        true
      end
      else false

let exhausted t =
  Atomic.get t.cancelled_flag
  || (match t.max_trials with
     | Some m -> Atomic.get t.trials >= m
     | None -> false)
  || past_deadline t
