type t = {
  deadline : float option;  (* absolute Unix time *)
  max_trials : int option;
  cancelled_flag : bool Atomic.t;
  trials : int Atomic.t;
  expired : bool Atomic.t;  (* sticky deadline observation *)
}

let create ?deadline_s ?max_trials () =
  (match deadline_s with
  | Some d when d <= 0. -> invalid_arg "Budget.create: deadline_s must be positive"
  | _ -> ());
  (match max_trials with
  | Some n when n <= 0 -> invalid_arg "Budget.create: max_trials must be positive"
  | _ -> ());
  {
    deadline = Option.map (fun d -> Unix.gettimeofday () +. d) deadline_s;
    max_trials;
    cancelled_flag = Atomic.make false;
    trials = Atomic.make 0;
    expired = Atomic.make false;
  }

let cancel t = Atomic.set t.cancelled_flag true
let cancelled t = Atomic.get t.cancelled_flag
let spend t n = if n > 0 then ignore (Atomic.fetch_and_add t.trials n)
let spent t = Atomic.get t.trials

let remaining_trials t =
  if Atomic.get t.cancelled_flag then 0
  else
    match t.max_trials with
    | None -> max_int
    | Some m -> max 0 (m - Atomic.get t.trials)

let past_deadline t =
  match t.deadline with
  | None -> false
  | Some d ->
      Atomic.get t.expired
      ||
      if Unix.gettimeofday () > d then begin
        Atomic.set t.expired true;
        true
      end
      else false

let remaining_deadline t =
  Option.map (fun d -> d -. Unix.gettimeofday ()) t.deadline

let limitless t = t.deadline = None && t.max_trials = None

let exhausted t =
  Atomic.get t.cancelled_flag
  || (match t.max_trials with
     | Some m -> Atomic.get t.trials >= m
     | None -> false)
  || past_deadline t

let allocate ~trials ~costs =
  if trials < 0 then invalid_arg "Budget.allocate: trials must be >= 0";
  Array.iter
    (fun c -> if c < 0 then invalid_arg "Budget.allocate: negative cost")
    costs;
  let n = Array.length costs in
  if n = 0 then [||]
  else begin
    (* A floor of one trial each (when the allowance can afford it), then
       the rest apportioned by cost with the largest-remainder method, so
       the shares always sum to exactly [trials] — no allowance is lost to
       rounding and none is invented. *)
    let base = if trials >= n then 1 else 0 in
    let out = Array.make n base in
    let pool = trials - (base * n) in
    if pool > 0 then begin
      let total = Array.fold_left ( + ) 0 costs in
      if total <= 0 then begin
        let q = pool / n and r = pool mod n in
        for i = 0 to n - 1 do
          out.(i) <- out.(i) + q + (if i < r then 1 else 0)
        done
      end
      else begin
        let shares =
          Array.map
            (fun c -> float_of_int pool *. float_of_int c /. float_of_int total)
            costs
        in
        let floors = Array.map (fun s -> int_of_float (Float.floor s)) shares in
        Array.iteri (fun i f -> out.(i) <- out.(i) + f) floors;
        let leftover = max 0 (pool - Array.fold_left ( + ) 0 floors) in
        (* Hand the integer remainder out by largest fractional share
           (lowest index on ties); cycling covers any float-noise excess. *)
        let order = Array.init n (fun i -> i) in
        Array.sort
          (fun i j ->
            let fi = shares.(i) -. float_of_int floors.(i)
            and fj = shares.(j) -. float_of_int floors.(j) in
            match compare fj fi with 0 -> compare i j | c -> c)
          order;
        for k = 0 to leftover - 1 do
          let i = order.(k mod n) in
          out.(i) <- out.(i) + 1
        done
      end
    end;
    out
  end

let split t ~cost ~remaining_cost =
  if remaining_cost < 1 then
    invalid_arg "Budget.split: remaining_cost must be >= 1";
  let dead () =
    let b = create () in
    cancel b;
    b
  in
  if exhausted t then dead ()
  else
    let c = max 0 (min cost remaining_cost) in
    let fraction = float_of_int c /. float_of_int remaining_cost in
    let deadline_s =
      match remaining_deadline t with
      | None -> None
      | Some rem -> Some (rem *. fraction)
    in
    let max_trials =
      match t.max_trials with
      | None -> None
      | Some _ ->
          let rem = remaining_trials t in
          (* The closing share ([cost = remaining_cost]) takes everything
             left, so shares handed out over a full schedule sum to exactly
             the remaining allowance — intermediate rounding drift lands on
             the last shard instead of silently vanishing (or, with the old
             per-share ceil, compounding into oversubscription). *)
          let share =
            if c >= remaining_cost then rem
            else
              int_of_float
                (Float.round (float_of_int rem *. fraction))
          in
          Some (max 1 (min rem share))
    in
    match deadline_s with
    | Some s when s <= 0. -> dead ()
    | _ -> create ?deadline_s ?max_trials ()
