(** The confidence compilation engine: pay Monte-Carlo cost only for the
    hard cases.

    Most real lineage decomposes (Koch & Olteanu, "Conditioning probabilistic
    databases"): after normalization ({!Lineage.normalize}) a tuple's DNF
    usually splits into variable-disjoint independent components, each of
    which factors further through disjoint (mutually exclusive) expansions.
    [compile] applies those rewrites — independent-OR, disjoint-OR on a
    variable bound in every clause, and {e bounded} Shannon expansion on the
    most-shared variable — solving everything it can in closed form and
    leaving only the irreducible residues as prepared {!Dnf} leaves for the
    adaptive Karp-Luby sampler.

    {2 Error propagation}

    The compiled tree combines children only through
    [Σ wᵢ·pᵢ (Σ wᵢ ≤ 1, wᵢ ≥ 0)] and [1 − Π(1 − pᵢ)].  Both preserve
    relative error: if every residual estimate satisfies
    [p̂ᵢ ∈ [(1−ε)pᵢ, (1+ε)pᵢ]], the root value is within relative [ε] of the
    true probability.  (Linear combinations are immediate; for the
    independent-OR, [f(ε) = 1 − Π(1 − (1+ε)pᵢ)] is concave in [ε] with
    [f'(0) = Σᵢ pᵢ·Π_{j≠i}(1−pⱼ) ≤ 1 − Π(1−pᵢ) = f(0)], so
    [f(ε) ≤ (1+ε)f(0)]; the lower side follows from the chord through
    [f(−1) = 0].)  Hence {!solve} estimates each residual at relative [ε]
    with failure budget [δ/r] and the union bound gives an overall (ε, δ)
    guarantee — the exact probability mass never spends a trial. *)

open Pqdb_numeric
open Pqdb_urel

type t

val default_fuel : int

val compile : ?fuel:int -> Wtable.t -> Assignment.t list -> t
(** Normalize and decompose the DNF.  [fuel] (default {!default_fuel})
    bounds the Shannon-expansion work: each pivot charges its domain size
    plus the clause count, and once exhausted the remaining clause set
    becomes a residual leaf.  [fuel = 0] disables compilation beyond
    normalization, trivial cases and single clauses — the pure-FPRAS
    baseline.  Independent-component splits and disjoint-OR expansions are
    free (they are linear-time and always shrink the problem).
    Deterministic: the tree and residual numbering are a pure function of
    (W table, clause list, fuel). *)

val is_exact : t -> bool
val exact_value : t -> float option
(** [Some p] iff compilation resolved the whole DNF ([is_exact]). *)

val residuals : t -> Dnf.t array
(** The irreducible clause sets, prepared for sampling, in deterministic
    order. *)

val residual_count : t -> int

val residual_weights : t -> float array
(** Per residual: the summed path weight from the root, an upper bound on
    [∂P/∂p̂ᵢ] — how much of the final value the residual can account for. *)

val value : t -> float array -> float
(** Evaluate the tree given one probability estimate per residual (pass
    [[||]] when [is_exact]).  Monotone in every estimate, so plugging in
    per-residual interval endpoints yields sound interval endpoints for the
    tuple confidence (top-k uses this).
    @raise Invalid_argument on an estimate-count mismatch. *)

val size : t -> int
(** Node count (diagnostics). *)

type outcome = {
  value : float;  (** the (ε, δ) estimate — exact when [trials = 0] *)
  trials : int;  (** estimator calls spent on residuals *)
  residual_mass : float;
      (** Σ path-weight·p̂ over residuals, clamped to [value]: the share of
          the reported probability that rests on sampling.  [0] when exact;
          [1 − residual_mass/value] is the per-tuple exact fraction. *)
  lo : float;
  hi : float;
      (** a sound probability interval for the tuple confidence, holding
          with probability ≥ 1 − δ: per-residual certified intervals pushed
          through the monotone tree, intersected with the relative-ε bracket
          when [complete].  Degenerates to a point when exact; never wider
          than the a-priori {!vacuous_interval}. *)
  achieved_eps : float;
      (** the relative error actually certified at confidence δ: the
          requested ε when [complete], the worst residual's partial-trial
          ε′ otherwise ([infinity] when some residual is vacuous, [0] when
          exact).  When sampling never ran at all — fallback sampling died,
          budget exhausted before the first trial — this is instead the
          {e absolute} half-width of the a-priori {!vacuous_interval}, the
          honest certificate actually held, rather than a claim about a
          relative contract that was never attempted. *)
  complete : bool;  (** the requested (ε, δ) contract was met *)
}

val vacuous_interval : t -> float * float
(** The a-priori bracket on the tuple confidence, free of any sampling:
    the monotone tree evaluated with every residual at 0 (the exact
    compiled mass — a hard floor) and at its full mass [min(1, Mᵢ)].  A
    point when [is_exact]. *)

val solve : ?budget:Budget.t -> Rng.t -> t -> eps:float -> delta:float -> outcome
(** Estimate every residual with {!Karp_luby.adaptive} and evaluate the
    tree; by the error propagation above the result is an (ε, δ) relative
    approximation of the tuple confidence.  Residuals are sampled in order
    from the given RNG, so the outcome is deterministic per RNG state.

    Two refinements make the residual phase pay only for what sampling must
    actually decide:

    {ul
    {- {e Exact-mass tightening with weight-aware budgets} (for [ε < ½]): a
       coarse ε₁ = ½ pass over the residuals yields a certified lower bound
       [T_lo] on the tuple confidence (evaluate the monotone tree at
       [p̂ᵢ/(1+ε₁)]) and per-residual error capacities
       [aᵢ = (1+ε₁)·wᵢ·p̂ᵢ ≥ wᵢpᵢ].  Since the tree is multilinear with
       [|∂P/∂p̂ᵢ| ≤ wᵢ], any per-residual targets with [Σ aᵢ·εᵢ ≤ ε·T_lo]
       land the root within relative [ε] — closed-form mass directly
       relaxes (quadratically cheapens) the residual budgets.  Under that
       constraint the re-sampling spend [Σ Kᵢ/εᵢ²] ([Kᵢ] the clause count)
       is minimized by [εᵢ ∝ (Kᵢ/aᵢ)^⅓] (water-filling, clamped to
       [[ε, ε₁]]): heavy-but-cheap residuals get tight targets,
       light-but-expensive ones looser, instead of one uniform
       [ε₂ = ε·T_lo/S_hi] for all.  A residual whose target reaches ε₁
       keeps its coarse certificate and is not re-sampled; when even the
       all-ε floor overruns [ε·T_lo] every target falls back to [ε], the
       plain union-bound regime.}
    {- {e Truncation guard}: bounded Shannon expansion duplicates clauses
       across branches, so the residual leaves can be collectively more
       expensive than the original DNF.  [solve] compares worst-case
       Chernoff caps and falls back to one adaptive pass over the whole
       normalized DNF when that is cheaper — compilation never costs more
       than a bounded overhead relative to pure FPRAS.}}

    {e Degradation}: estimator failures are contained per residual — a
    residual whose sampling raises keeps its vacuous interval and the tuple
    still comes back with a sound (wider) [lo, hi] and [complete = false].
    With a [budget], every residual pass charges the shared governor
    ({!Karp_luby.adaptive_partial}) and stops at exhaustion, reporting the
    interval its partial trials certify.  Without a budget the call consumes
    the RNG exactly as before and returns [complete = true] with
    [achieved_eps = eps].
    @raise Invalid_argument when [eps <= 0] or [delta <= 0]. *)

val confidence :
  ?fuel:int -> Rng.t -> Wtable.t -> Assignment.t list ->
  eps:float -> delta:float -> float
(** [compile] + [solve], returning just the estimate. *)
