(** The Karp-Luby FPRAS for confidence computation (Section 4,
    Proposition 4.2).

    Running the estimator [m] times and averaging gives
    [p̂ = X·M/m] with [Pr(|p̂ − p| ≥ ε·p) ≤ 2·exp(−m·ε²/(3·|F|))]; choosing
    [m = ⌈3·|F|·ln(2/δ)/ε²⌉] yields an (ε, δ) guarantee. *)

open Pqdb_numeric
open Pqdb_urel

val run : Rng.t -> Dnf.t -> trials:int -> float
(** [p̂] after exactly [trials] estimator calls.  Degenerate DNFs (no clauses
    / empty clause) return 0 or 1 without sampling. *)

val run_parallel : ?nworkers:int -> Rng.t -> Dnf.t -> trials:int -> float
(** As {!run}, with the trial budget sharded over up to [nworkers] domains
    (default {!Pool.default_workers}), one {!Pqdb_numeric.Rng.split_n} child
    stream per shard.  For a fixed (parent RNG state, [nworkers], [trials])
    the estimate is bit-deterministic — shard sizes, shard streams and the
    integer success sum do not depend on scheduling — and each shard runs the
    same unbiased estimator as {!run}, so the statistical (ε, δ) guarantees
    are unchanged.  [nworkers = 1] runs on the calling domain alone (no
    spawns) but still draws from a child stream, so it reproduces
    [run_parallel], not [run].
    @raise Invalid_argument when [trials <= 0] or [nworkers <= 0]. *)

val fpras : Rng.t -> Dnf.t -> eps:float -> delta:float -> float
(** The (ε, δ) approximation scheme: picks the Chernoff-derived trial count.
    @raise Invalid_argument when [eps <= 0] or [delta <= 0]. *)

val fpras_parallel :
  ?nworkers:int -> Rng.t -> Dnf.t -> eps:float -> delta:float -> float
(** {!fpras} with the trial budget run through {!run_parallel}. *)

val trials_for : Dnf.t -> eps:float -> delta:float -> int
(** The [m] used by {!fpras} (0 for degenerate DNFs). *)

val confidence : Rng.t -> Wtable.t -> Assignment.t list ->
  eps:float -> delta:float -> float
(** Convenience: prepare + fpras. *)

(** {1 Adaptive stopping (Dagum–Karp–Luby–Ross)}

    The fixed Chernoff budget [3·|F|·ln(2/δ)/ε²] provisions for the
    worst-case mean [μ = p/M ≥ 1/|F|].  The optimal-stopping approach of
    Dagum, Karp, Luby and Ross ("An optimal algorithm for Monte Carlo
    estimation") instead spends [O(ln(1/δ)/(ε²·μ))] expected trials — the
    win is a factor of [|F|·μ], which on real lineage (few deeply
    overlapping clauses) is most of the budget. *)

val adaptive : Rng.t -> Dnf.t -> eps:float -> delta:float -> float * int
(** [(p̂, trials)] with [Pr(|p̂ − p| ≥ ε·p) ≤ δ].  Degenerate and
    single-clause DNFs are answered exactly with 0 trials.  For [ε ≥ ½] one
    stopping-rule phase runs; below that, a two-phase AA-style schedule:
    a rough stopping-rule estimate at ε₁ = ½ (δ/2), then a fresh Chernoff
    batch sized by the estimated mean (δ/2).  Every phase is capped at its
    fixed-budget equivalent, so the trial count never exceeds roughly the
    non-adaptive cost and the guarantee holds on the capped path too.
    Deterministic given the RNG state.
    @raise Invalid_argument when [eps <= 0] or [delta <= 0]. *)

val fpras_adaptive : Rng.t -> Dnf.t -> eps:float -> delta:float -> float
(** [fst ∘ adaptive] — drop-in replacement for {!fpras}. *)

(** {1 Budget-governed estimation}

    When a {!Budget} is supplied, sampling stops the moment the governor is
    exhausted and the result reports what the trials spent so far certify:
    a sound probability interval [[p_lo, p_hi]] and the achieved relative
    error [p_eps] at the requested confidence δ. *)

type partial = {
  p_estimate : float;  (** point estimate (0 when no trial ran) *)
  p_lo : float;        (** certified lower bound, in [0, 1] *)
  p_hi : float;        (** certified upper bound, ≤ min(1, M) *)
  p_trials : int;      (** estimator calls actually spent *)
  p_eps : float;
      (** achieved relative error at confidence δ: the requested ε when
          complete, [√(3·|F|·ln(2/δ)/n)] after [n] partial trials,
          [infinity] when the interval is vacuous, 0 when exact *)
  p_complete : bool;   (** the requested (ε, δ) contract was met *)
}

val adaptive_partial :
  ?budget:Budget.t -> Rng.t -> Dnf.t -> eps:float -> delta:float -> partial
(** Without a budget this delegates to {!adaptive} (same RNG consumption,
    same estimate) and always returns [p_complete = true].  With a budget it
    runs a single DKLR stopping-rule phase at (ε, δ), charging one trial at
    a time and polling {!Budget.exhausted}; on exhaustion the partial-trial
    Chernoff inversion above yields the interval (vacuous [0, min(1, M)]
    when nothing can be said).  Degenerate and single-clause DNFs are
    answered exactly with a point interval and 0 trials either way.
    @raise Invalid_argument when [eps <= 0] or [delta <= 0]. *)
