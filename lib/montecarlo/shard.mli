(** Shard planning and checkpoint records for streaming batch confidence.

    A shard is a contiguous run of batch tuples whose summed {e worst-case}
    sampling cost (the fixed Chernoff budget of the uncompiled FPRAS, the
    same a-priori model as {!Confidence.total_trials}) fits under a caller
    chosen ceiling.  {!Confidence.run_stream} compiles and solves one shard
    at a time, so resident memory is bounded by the shard ceiling rather
    than the batch, and journals one {!outcome} record per shard so a killed
    run loses at most the shard in flight.

    Planning is a pure function of the clause sets and (ε, δ, max_cost) —
    the same inputs always cut the same shard boundaries, which is what
    makes journal records from a previous process meaningful.  Tuples the
    compiler will resolve exactly still count 1 so a shard's tuple count
    never exceeds [max_cost].

    Records serialize through ["%h"] hex floats, so estimates and brackets
    round-trip {e bit-exactly} — resuming from a journal reproduces the
    uninterrupted run to the last bit. *)

open Pqdb_urel

type t = {
  index : int;  (** position in the plan, 0-based *)
  first : int;  (** index of the shard's first tuple in the batch *)
  count : int;  (** number of tuples (≥ 1) *)
  cost : int;  (** summed worst-case trial cost of its tuples *)
}

val tuple_cost : eps:float -> delta:float -> Assignment.t list -> int
(** Worst-case cost of one tuple: its fixed Chernoff budget, plus 1 so even
    free (empty / trivially-true) tuples occupy planning weight. *)

val plan : eps:float -> delta:float -> max_cost:int -> Assignment.t list array -> t array
(** Greedy contiguous cut: tuples are appended to the current shard while
    the summed cost stays within [max_cost]; a single tuple costlier than
    [max_cost] gets a shard of its own.  Covers every tuple exactly once, in
    order.  Empty input plans to [[||]].
    @raise Invalid_argument when [max_cost < 1]. *)

val fingerprint : Assignment.t list array -> t -> string
(** 8-hex CRC-32 over the shard's clause sets in canonical
    {!Udb_io.condition_to_string} syntax.  Stored in each journal record and
    re-checked on resume, so a journal replayed against different data (or a
    different shard plan) fails typed instead of silently splicing wrong
    numbers in. *)

type outcome = {
  shard : t;
  fp : string;  (** the shard's {!fingerprint}, carried in the record *)
  estimates : float array;  (** per tuple of the shard, in batch order *)
  intervals : (float * float) array;
  trials : int array;
  achieved : float array;
  masses : float array;  (** per-tuple sampled residual mass *)
  complete : bool;  (** every tuple met its (ε, δ) contract *)
  resumed : bool;  (** replayed from a journal, not recomputed *)
  quarantined : Pqdb_runtime.Pqdb_error.t option;
      (** [Some err] when the shard kept failing after its retry budget: the
          arrays hold a-priori compiled brackets (sound, never journaled)
          and [err] is the last failure, typed. *)
}

val to_payload : outcome -> string
(** Newline-free journal payload.  Quarantined outcomes must not be
    journaled (resume should retry them); this raises [Invalid_argument] on
    one. *)

val of_payload : ?resumed:bool -> source:string -> record:int -> string -> outcome
(** Parse a journal payload back (bit-exact floats).  [resumed] defaults to
    [true] (journal replay); the distributed coordinator parses worker wire
    records with [~resumed:false] since those shards were computed fresh.
    @raise Pqdb_runtime.Pqdb_error.Error ([Malformed_input] naming [source]
    and [record]) on any syntax, arity or range problem. *)

val meta_payload :
  n:int -> eps:float -> delta:float -> fuel:int option -> shard_cost:int -> string
(** First record of every stream journal: the parameters that determine the
    shard plan and the sampling results.  Resume compares the stored payload
    against the current run's for literal equality — any drift (different
    batch size, ε, δ, fuel or shard ceiling) makes old records meaningless
    and must fail typed rather than resume. *)

val backoff_s : attempt:int -> float
(** Deterministic retry backoff: 0 before the first attempt, then
    5 ms · 2^(attempt−1), capped at 100 ms.  Pure function of [attempt], so
    retried runs behave identically everywhere. *)

(** {1 Journal lifecycle}

    The append/validate/abandon policy shared by the in-process stream
    ({!Confidence.run_stream}) and the distributed coordinator
    ({!Pqdb_distrib.Coordinator} if linked) — both write the {e same}
    journal format, which is what makes a journal resumable across any
    worker count, including one. *)

type journal

val null_journal : unit -> journal
(** The no-checkpoint journal: appends are no-ops, {!journal_ok} stays
    [true]. *)

val open_journal :
  ?retries:int -> resume:bool -> meta:string -> plan:t array ->
  clause_sets:Pqdb_urel.Assignment.t list array -> string ->
  journal * (int, outcome) Hashtbl.t
(** Open (or resume) a checkpoint journal at the given path.  A fresh or
    empty journal gets [meta] appended as its first record.  On resume the
    stored meta must equal [meta] literally, and every record is validated
    against the plan (known index, matching geometry, matching data
    fingerprint) with identical duplicates resolving first-wins; the
    validated outcomes are returned keyed by shard index.  [retries]
    (default 2) is the append retry budget before the journal is abandoned.
    @raise Pqdb_runtime.Pqdb_error.Error ([Malformed_input]) on parameter
    drift, corruption, conflicting duplicates, or plan mismatch. *)

val journal_append : journal -> string -> unit
(** Append one payload with retry/backoff; after [retries] consecutive
    failures the journal is abandoned (subsequent appends no-op,
    {!journal_ok} turns [false]) — journaling is an aid, not a contract. *)

val journal_ok : journal -> bool

val close_journal : journal -> unit
(** Close the underlying writer (idempotent; no-op when abandoned). *)

val compact_journal : string -> int * int
(** Rewrite a journal in place keeping the meta record plus the latest
    record per shard id, in shard order — a journal extended across many
    partial runs stops growing without bound and restart cost becomes
    O(live shards).  Identical duplicates collapse; conflicting duplicates
    raise the same typed error resume would, so a compacted journal resumes
    exactly like the original.  The rewrite goes through a temp file and an
    atomic rename, so a crash mid-compaction leaves the original intact.
    Returns [(records kept, records dropped)], meta included.
    @raise Pqdb_runtime.Pqdb_error.Error ([Malformed_input]) on a missing,
    empty or corrupt journal. *)
