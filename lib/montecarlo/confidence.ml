open Pqdb_numeric
open Pqdb_urel

type batch = { dnfs : Dnf.t array }

let prepare w clause_sets =
  (* Serial phase: builds every DNF's sampling tables and forces the shared
     per-variable alias cache in the W table, so the parallel phase below is
     read-only on all shared structures. *)
  { dnfs = Array.map (Dnf.prepare w) clause_sets }

let size batch = Array.length batch.dnfs

let total_trials batch ~eps ~delta =
  Array.fold_left
    (fun acc dnf -> acc + Karp_luby.trials_for dnf ~eps ~delta)
    0 batch.dnfs

let run ?nworkers rng batch ~eps ~delta =
  if eps <= 0. || delta <= 0. then invalid_arg "Confidence.run";
  let nworkers =
    match nworkers with Some n -> n | None -> Pool.default_workers ()
  in
  if nworkers <= 0 then
    invalid_arg "Confidence.run: nworkers must be positive";
  let n = Array.length batch.dnfs in
  let out = Array.make n 0. in
  if n > 0 then begin
    (* One child stream and one output slot per tuple: the estimates are
       bit-deterministic for a fixed parent RNG state, independent of the
       pool size and of which domain runs which tuple. *)
    let rngs = Rng.split_n rng n in
    let budgets =
      Array.map (fun dnf -> Karp_luby.trials_for dnf ~eps ~delta) batch.dnfs
    in
    Array.iteri
      (fun i dnf -> if Dnf.is_trivially_true dnf then out.(i) <- 1.)
      batch.dnfs;
    (* Farm only the tuples that actually need sampling, longest budget
       first so stragglers start early. *)
    let live =
      Array.of_list
        (List.sort
           (fun i j -> compare budgets.(j) budgets.(i))
           (List.filter
              (fun i -> budgets.(i) > 0)
              (List.init n Fun.id)))
    in
    let ntasks = Array.length live in
    if ntasks > 0 then
      Pool.run (Pool.create (min nworkers ntasks)) ~ntasks (fun k ->
          let i = live.(k) in
          out.(i) <- Karp_luby.run rngs.(i) batch.dnfs.(i) ~trials:budgets.(i))
  end;
  out

let batch_fpras ?nworkers rng w clause_sets ~eps ~delta =
  run ?nworkers rng (prepare w clause_sets) ~eps ~delta

let approx_confidences ?nworkers rng w u ~eps ~delta =
  let groups = Urelation.clauses_by_tuple u in
  let batch = prepare w (Array.of_list (List.map snd groups)) in
  let estimates = run ?nworkers rng batch ~eps ~delta in
  List.mapi (fun i (t, _) -> (t, estimates.(i))) groups
