open Pqdb_numeric
open Pqdb_urel
module Faultpoint = Pqdb_runtime.Faultpoint
module Pqdb_error = Pqdb_runtime.Pqdb_error

type batch = {
  clause_sets : Assignment.t list array;
  comps : Compile.t array;
}

type stats = {
  trials_used : int array;
  exact_fraction : float;
  intervals : (float * float) array;
  achieved_eps : float array;
  complete : bool;
}

let prepare ?compile_fuel w clause_sets =
  (* Serial phase: compilation prepares every residual DNF's sampling tables
     and forces the shared per-variable alias cache in the W table, so the
     parallel phase below is read-only on all shared structures. *)
  { clause_sets; comps = Array.map (Compile.compile ?fuel:compile_fuel w) clause_sets }

let size batch = Array.length batch.comps

let total_trials batch ~eps ~delta =
  (* The historical cost model: the fixed Chernoff budget the pure FPRAS
     would pay per tuple, before compilation removes the exact mass. *)
  Array.fold_left
    (fun acc clauses ->
      match clauses with
      | [] -> acc
      | cs when List.exists Assignment.is_empty cs -> acc
      | cs -> acc + Stats.karp_luby_trials ~clauses:(List.length cs) ~eps ~delta)
    0 batch.clause_sets

(* Cap on what the adaptive sampler can spend on tuple [i] — used only to
   order the farmed work longest-first so stragglers start early. *)
let cost_bound batch i ~eps ~delta =
  Array.fold_left
    (fun acc dnf ->
      if Dnf.is_trivially_false dnf || Dnf.is_trivially_true dnf then acc
      else acc + Stats.karp_luby_trials ~clauses:(Dnf.clause_count dnf) ~eps ~delta)
    0
    (Compile.residuals batch.comps.(i))

type core = {
  c_out : float array;
  c_trials : int array;
  c_masses : float array;
  c_intervals : (float * float) array;
  c_achieved : float array;
  c_complete : bool;
}

(* The solve phase over pre-split per-tuple RNG lanes.  Tuple [i] consumes
   only [lanes.(i)], so any partition of a batch into sub-batches run
   through this (with the matching lane slices) produces bit-identical
   per-tuple results — the property the streaming/resume layer rests on. *)
let run_core ?budget ?nworkers lanes batch ~eps ~delta =
  let nworkers =
    match nworkers with Some n -> n | None -> Pool.default_workers ()
  in
  if nworkers <= 0 then
    invalid_arg "Confidence.run: nworkers must be positive";
  let n = size batch in
  if Array.length lanes <> n then
    invalid_arg "Confidence.run: one RNG lane per tuple";
  let out = Array.make n 0. in
  let trials_used = Array.make n 0 in
  let masses = Array.make n 0. in
  let intervals = Array.make n (0., 0.) in
  let achieved = Array.make n 0. in
  (* Flipped (from any domain) the moment a tuple misses its (ε, δ)
     contract or a task/pool failure is contained. *)
  let all_complete = Atomic.make true in
  if n > 0 then begin
    (* Tuples the compiler resolved in closed form cost nothing — fill them
       here and farm only the ones with residual sampling work, longest
       worst-case budget first.  Live tuples are pre-filled with their
       a-priori compiled bracket so that a tuple whose task never runs (or
       dies) still reports a sound interval instead of garbage; its
       achieved_eps is the bracket's absolute half-width — the certificate
       actually held — never the requested ε. *)
    let live = ref [] in
    Array.iteri
      (fun i comp ->
        match Compile.exact_value comp with
        | Some p ->
            out.(i) <- p;
            intervals.(i) <- (p, p)
        | None ->
            let lo, hi = Compile.vacuous_interval comp in
            out.(i) <- lo;
            intervals.(i) <- (lo, hi);
            achieved.(i) <- (hi -. lo) /. 2.;
            live := i :: !live)
      batch.comps;
    let live =
      Array.of_list
        (List.stable_sort
           (fun i j ->
             compare (cost_bound batch j ~eps ~delta)
               (cost_bound batch i ~eps ~delta))
           (List.rev !live))
    in
    let ntasks = Array.length live in
    if ntasks > 0 then begin
      let task k =
        let i = live.(k) in
        match Compile.solve ?budget lanes.(i) batch.comps.(i) ~eps ~delta with
        | o ->
            out.(i) <- o.Compile.value;
            trials_used.(i) <- o.Compile.trials;
            masses.(i) <- o.Compile.residual_mass;
            intervals.(i) <- (o.Compile.lo, o.Compile.hi);
            achieved.(i) <- o.Compile.achieved_eps;
            if not o.Compile.complete then Atomic.set all_complete false
        | exception _ ->
            (* Keep the pre-filled bracket; the batch must survive any
               single tuple. *)
            Atomic.set all_complete false
      in
      (* A pool-level failure (a task the pool itself could not run, a
         spawn problem surfacing late) degrades the whole batch to its
         pre-filled brackets rather than crashing it. *)
      match Pool.run (Pool.create (min nworkers ntasks)) ~ntasks task with
      | () -> ()
      | exception _ -> Atomic.set all_complete false
    end
  end;
  {
    c_out = out;
    c_trials = trials_used;
    c_masses = masses;
    c_intervals = intervals;
    c_achieved = achieved;
    c_complete = Atomic.get all_complete;
  }

let exact_fraction_of ~out ~masses =
  let total_value = Array.fold_left ( +. ) 0. out in
  let sampled_mass = Array.fold_left ( +. ) 0. masses in
  if total_value <= 0. then 1.
  else Float.max 0. (1. -. (sampled_mass /. total_value))

let run_with_stats ?budget ?nworkers rng batch ~eps ~delta =
  if eps <= 0. || delta <= 0. then invalid_arg "Confidence.run";
  let n = size batch in
  (* One child stream and one output slot per tuple: the estimates are
     bit-deterministic for a fixed parent RNG state, independent of the
     pool size and of which domain runs which tuple. *)
  let lanes = if n = 0 then [||] else Rng.split_n rng n in
  let c = run_core ?budget ?nworkers lanes batch ~eps ~delta in
  ( c.c_out,
    {
      trials_used = c.c_trials;
      exact_fraction = exact_fraction_of ~out:c.c_out ~masses:c.c_masses;
      intervals = c.c_intervals;
      achieved_eps = c.c_achieved;
      complete = c.c_complete;
    } )

let run ?budget ?nworkers rng batch ~eps ~delta =
  fst (run_with_stats ?budget ?nworkers rng batch ~eps ~delta)

let batch_fpras ?budget ?nworkers ?compile_fuel rng w clause_sets ~eps ~delta =
  run ?budget ?nworkers rng (prepare ?compile_fuel w clause_sets) ~eps ~delta

let approx_confidences ?budget ?nworkers ?compile_fuel rng w u ~eps ~delta =
  let groups = Urelation.clauses_by_tuple u in
  let batch = prepare ?compile_fuel w (Array.of_list (List.map snd groups)) in
  let estimates = run ?budget ?nworkers rng batch ~eps ~delta in
  List.mapi (fun i (t, _) -> (t, estimates.(i))) groups

(* --- streaming / checkpointed execution --------------------------------- *)

type stream_options = {
  shard_cost : int;
  retries : int;
  checkpoint : string option;
  resume : bool;
}

let default_stream_options =
  { shard_cost = 1_000_000; retries = 2; checkpoint = None; resume = false }

type stream_summary = {
  shards : int;
  resumed_shards : int;
  quarantined : (int * Pqdb_error.t) list;
  stream_trials : int;
  stream_complete : bool;
  journal_ok : bool;
}

let sum_trials a = Array.fold_left ( + ) 0 a

(* Sound per-tuple outcome for a shard whose computation cannot be trusted
   (kept failing, or failed on enough distinct workers): a-priori compiled
   brackets, zero trials, and the failure typed.  Shared by the in-process
   quarantine path and the distributed coordinator. *)
let apriori_outcome ?compile_fuel w clause_sets (sh : Shard.t) ~fp ~error =
  let count = sh.count in
  let estimates = Array.make count 0. in
  let intervals = Array.make count (0., 1.) in
  let achieved = Array.make count 0.5 in
  for j = 0 to count - 1 do
    match Compile.compile ?fuel:compile_fuel w clause_sets.(sh.first + j) with
    | comp -> (
        match Compile.exact_value comp with
        | Some p ->
            estimates.(j) <- p;
            intervals.(j) <- (p, p);
            achieved.(j) <- 0.
        | None ->
            let lo, hi = Compile.vacuous_interval comp in
            estimates.(j) <- lo;
            intervals.(j) <- (lo, hi);
            achieved.(j) <- (hi -. lo) /. 2.)
    | exception _ -> () (* keep the vacuous [0, 1] default *)
  done;
  let err =
    match error with
    | Pqdb_error.Error t -> t
    | e -> Pqdb_error.Task_failure { index = sh.index; inner = e }
  in
  {
    Shard.shard = sh;
    fp;
    estimates;
    intervals;
    trials = Array.make count 0;
    achieved;
    masses = Array.make count 0.;
    complete = false;
    resumed = false;
    quarantined = Some err;
  }

(* One attempt at one shard over the whole-batch lanes — the unit of work a
   stream iteration, a retry, or a remote worker executes.  Copies the
   shard's lane slice fresh, so every attempt (on any process) replays
   exactly the stream a fault-free first attempt would have consumed; by
   the run_core contract the outcome is bit-identical no matter where or in
   what order shards run.  Fires the "shard.run" fault point; failures
   propagate for the caller's retry/quarantine policy. *)
let solve_shard ?budget ?nworkers ?compile_fuel ~lanes w clause_sets
    (sh : Shard.t) ~fp ~eps ~delta =
  Faultpoint.fire "shard.run";
  let batch =
    prepare ?compile_fuel w (Array.sub clause_sets sh.first sh.count)
  in
  let sub_lanes = Array.init sh.count (fun j -> Rng.copy lanes.(sh.first + j)) in
  let c = run_core ?budget ?nworkers sub_lanes batch ~eps ~delta in
  {
    Shard.shard = sh;
    fp;
    estimates = c.c_out;
    intervals = c.c_intervals;
    trials = c.c_trials;
    achieved = c.c_achieved;
    masses = c.c_masses;
    complete = c.c_complete;
    resumed = false;
    quarantined = None;
  }

let run_stream ?budget ?nworkers ?compile_fuel
    ?(options = default_stream_options) rng w clause_sets ~eps ~delta ~emit =
  if eps <= 0. || delta <= 0. then invalid_arg "Confidence.run_stream";
  if options.shard_cost < 1 then
    invalid_arg "Confidence.run_stream: shard_cost must be >= 1";
  if options.retries < 0 then
    invalid_arg "Confidence.run_stream: retries must be >= 0";
  if options.resume && options.checkpoint = None then
    invalid_arg "Confidence.run_stream: resume requires a checkpoint journal";
  let n = Array.length clause_sets in
  let shards = Shard.plan ~eps ~delta ~max_cost:options.shard_cost clause_sets in
  (* Per-tuple lanes are split over the WHOLE batch up front; shards consume
     their tuples' lanes only.  Combined with the run_core contract this
     makes the stream bit-identical to the materialized run — and to any
     interrupted-and-resumed replay of itself. *)
  let lanes = if n = 0 then [||] else Rng.split_n rng n in
  let meta =
    Shard.meta_payload ~n ~eps ~delta ~fuel:compile_fuel
      ~shard_cost:options.shard_cost
  in
  let journal, resumed =
    match options.checkpoint with
    | None -> (Shard.null_journal (), Hashtbl.create 1)
    | Some path ->
        Shard.open_journal ~retries:options.retries ~resume:options.resume
          ~meta ~plan:shards ~clause_sets path
  in
  let total_cost = Array.fold_left (fun a s -> a + s.Shard.cost) 0 shards in
  let remaining_cost = ref total_cost in
  let stream_trials = ref 0 in
  let quarantined = ref [] in
  let resumed_count = ref 0 in
  let all_complete = ref true in
  let run_shard (sh : Shard.t) =
    let fp = Shard.fingerprint clause_sets sh in
    let attempt_once () =
      let sub_budget, charge_parent =
        match budget with
        | None -> (None, fun _ -> ())
        | Some b ->
            if Budget.limitless b then (Some b, fun _ -> ())
            else
              (* Budget-aware scheduling: this shard's proportional share of
                 what is left, by a-priori cost — the tail degrades evenly
                 instead of starving, and the closing shard takes the whole
                 remainder so no allowance is lost to rounding. *)
              ( Some
                  (Budget.split b ~cost:sh.cost
                     ~remaining_cost:(max 1 !remaining_cost)),
                fun used -> Budget.spend b used )
      in
      let o =
        solve_shard ?budget:sub_budget ?nworkers ?compile_fuel ~lanes w
          clause_sets sh ~fp ~eps ~delta
      in
      charge_parent (sum_trials o.Shard.trials);
      o
    in
    let rec go attempt =
      match attempt_once () with
      | o -> o
      | exception e ->
          if attempt >= options.retries then
            apriori_outcome ?compile_fuel w clause_sets sh ~fp ~error:e
          else begin
            Unix.sleepf (Shard.backoff_s ~attempt:(attempt + 1));
            go (attempt + 1)
          end
    in
    go 0
  in
  Array.iter
    (fun (sh : Shard.t) ->
      let outcome =
        match Hashtbl.find_opt resumed sh.index with
        | Some o ->
            incr resumed_count;
            (* Charge the governor with the journaled spend so later shards
               see the same remaining allowance as in the uninterrupted
               run. *)
            (match budget with
            | Some b -> Budget.spend b (sum_trials o.Shard.trials)
            | None -> ());
            o
        | None -> run_shard sh
      in
      remaining_cost := !remaining_cost - sh.cost;
      stream_trials := !stream_trials + sum_trials outcome.Shard.trials;
      if not outcome.Shard.complete then all_complete := false;
      (match outcome.Shard.quarantined with
      | Some err -> quarantined := (sh.index, err) :: !quarantined
      | None ->
          if not outcome.Shard.resumed then
            Shard.journal_append journal (Shard.to_payload outcome));
      emit outcome)
    shards;
  Shard.close_journal journal;
  {
    shards = Array.length shards;
    resumed_shards = !resumed_count;
    quarantined = List.rev !quarantined;
    stream_trials = !stream_trials;
    stream_complete = !all_complete && !quarantined = [];
    journal_ok = Shard.journal_ok journal;
  }

let run_stream_with_stats ?budget ?nworkers ?compile_fuel ?options rng w
    clause_sets ~eps ~delta =
  let n = Array.length clause_sets in
  let out = Array.make n 0. in
  let trials_used = Array.make n 0 in
  let masses = Array.make n 0. in
  let intervals = Array.make n (0., 0.) in
  let achieved = Array.make n 0. in
  let summary =
    run_stream ?budget ?nworkers ?compile_fuel ?options rng w clause_sets ~eps
      ~delta ~emit:(fun (o : Shard.outcome) ->
        let f = o.shard.Shard.first and c = o.shard.Shard.count in
        Array.blit o.estimates 0 out f c;
        Array.blit o.trials 0 trials_used f c;
        Array.blit o.masses 0 masses f c;
        Array.blit o.intervals 0 intervals f c;
        Array.blit o.achieved 0 achieved f c)
  in
  ( out,
    {
      trials_used;
      exact_fraction = exact_fraction_of ~out ~masses;
      intervals;
      achieved_eps = achieved;
      complete = summary.stream_complete;
    },
    summary )
