open Pqdb_numeric
open Pqdb_urel

type batch = {
  clause_sets : Assignment.t list array;
  comps : Compile.t array;
}

type stats = {
  trials_used : int array;
  exact_fraction : float;
  intervals : (float * float) array;
  achieved_eps : float array;
  complete : bool;
}

let prepare ?compile_fuel w clause_sets =
  (* Serial phase: compilation prepares every residual DNF's sampling tables
     and forces the shared per-variable alias cache in the W table, so the
     parallel phase below is read-only on all shared structures. *)
  { clause_sets; comps = Array.map (Compile.compile ?fuel:compile_fuel w) clause_sets }

let size batch = Array.length batch.comps

let total_trials batch ~eps ~delta =
  (* The historical cost model: the fixed Chernoff budget the pure FPRAS
     would pay per tuple, before compilation removes the exact mass. *)
  Array.fold_left
    (fun acc clauses ->
      match clauses with
      | [] -> acc
      | cs when List.exists Assignment.is_empty cs -> acc
      | cs -> acc + Stats.karp_luby_trials ~clauses:(List.length cs) ~eps ~delta)
    0 batch.clause_sets

(* Cap on what the adaptive sampler can spend on tuple [i] — used only to
   order the farmed work longest-first so stragglers start early. *)
let cost_bound batch i ~eps ~delta =
  Array.fold_left
    (fun acc dnf ->
      if Dnf.is_trivially_false dnf || Dnf.is_trivially_true dnf then acc
      else acc + Stats.karp_luby_trials ~clauses:(Dnf.clause_count dnf) ~eps ~delta)
    0
    (Compile.residuals batch.comps.(i))

let run_with_stats ?budget ?nworkers rng batch ~eps ~delta =
  if eps <= 0. || delta <= 0. then invalid_arg "Confidence.run";
  let nworkers =
    match nworkers with Some n -> n | None -> Pool.default_workers ()
  in
  if nworkers <= 0 then
    invalid_arg "Confidence.run: nworkers must be positive";
  let n = size batch in
  let out = Array.make n 0. in
  let trials_used = Array.make n 0 in
  let masses = Array.make n 0. in
  let intervals = Array.make n (0., 0.) in
  let achieved = Array.make n 0. in
  (* Flipped (from any domain) the moment a tuple misses its (ε, δ)
     contract or a task/pool failure is contained. *)
  let all_complete = Atomic.make true in
  if n > 0 then begin
    (* One child stream and one output slot per tuple: the estimates are
       bit-deterministic for a fixed parent RNG state, independent of the
       pool size and of which domain runs which tuple. *)
    let rngs = Rng.split_n rng n in
    (* Tuples the compiler resolved in closed form cost nothing — fill them
       here and farm only the ones with residual sampling work, longest
       worst-case budget first.  Live tuples are pre-filled with their
       a-priori compiled bracket so that a tuple whose task never runs (or
       dies) still reports a sound interval instead of garbage. *)
    let live = ref [] in
    Array.iteri
      (fun i comp ->
        match Compile.exact_value comp with
        | Some p ->
            out.(i) <- p;
            intervals.(i) <- (p, p)
        | None ->
            let lo, hi = Compile.vacuous_interval comp in
            out.(i) <- lo;
            intervals.(i) <- (lo, hi);
            achieved.(i) <- Float.infinity;
            live := i :: !live)
      batch.comps;
    let live =
      Array.of_list
        (List.stable_sort
           (fun i j ->
             compare (cost_bound batch j ~eps ~delta)
               (cost_bound batch i ~eps ~delta))
           (List.rev !live))
    in
    let ntasks = Array.length live in
    if ntasks > 0 then begin
      let task k =
        let i = live.(k) in
        match Compile.solve ?budget rngs.(i) batch.comps.(i) ~eps ~delta with
        | o ->
            out.(i) <- o.Compile.value;
            trials_used.(i) <- o.Compile.trials;
            masses.(i) <- o.Compile.residual_mass;
            intervals.(i) <- (o.Compile.lo, o.Compile.hi);
            achieved.(i) <- o.Compile.achieved_eps;
            if not o.Compile.complete then Atomic.set all_complete false
        | exception _ ->
            (* Keep the pre-filled bracket; the batch must survive any
               single tuple. *)
            Atomic.set all_complete false
      in
      (* A pool-level failure (a task the pool itself could not run, a
         spawn problem surfacing late) degrades the whole batch to its
         pre-filled brackets rather than crashing it. *)
      match Pool.run (Pool.create (min nworkers ntasks)) ~ntasks task with
      | () -> ()
      | exception _ -> Atomic.set all_complete false
    end
  end;
  let total_value = Array.fold_left ( +. ) 0. out in
  let sampled_mass = Array.fold_left ( +. ) 0. masses in
  let exact_fraction =
    if total_value <= 0. then 1.
    else Float.max 0. (1. -. (sampled_mass /. total_value))
  in
  ( out,
    {
      trials_used;
      exact_fraction;
      intervals;
      achieved_eps = achieved;
      complete = Atomic.get all_complete;
    } )

let run ?budget ?nworkers rng batch ~eps ~delta =
  fst (run_with_stats ?budget ?nworkers rng batch ~eps ~delta)

let batch_fpras ?budget ?nworkers ?compile_fuel rng w clause_sets ~eps ~delta =
  run ?budget ?nworkers rng (prepare ?compile_fuel w clause_sets) ~eps ~delta

let approx_confidences ?budget ?nworkers ?compile_fuel rng w u ~eps ~delta =
  let groups = Urelation.clauses_by_tuple u in
  let batch = prepare ?compile_fuel w (Array.of_list (List.map snd groups)) in
  let estimates = run ?budget ?nworkers rng batch ~eps ~delta in
  List.mapi (fun i (t, _) -> (t, estimates.(i))) groups
