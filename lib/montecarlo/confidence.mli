(** Batched approximate confidence: the whole-U-relation compiled path.

    Where {!Karp_luby.fpras} answers one tuple by pure sampling, this module
    compiles every tuple's lineage first ({!Compile}): tuples that decompose
    fully are answered exactly for free, and only the irreducible residues
    are farmed to the adaptive Karp-Luby sampler over the domain pool.  Not
    to be confused with {!Pqdb_urel.Confidence}, the exact (#P-hard) solver.

    Determinism contract: every tuple gets its own
    {!Pqdb_numeric.Rng.split_n} child stream and its own output slot, and
    runs its residual budgets serially on one domain.  For a fixed parent
    RNG state (and fixed compilation fuel) the estimates are therefore
    bit-identical across runs {e and across pool sizes}; parallelism is
    across tuples only (shard a single huge tuple with
    {!Karp_luby.run_parallel} instead). *)

open Pqdb_numeric
open Pqdb_relational
open Pqdb_urel

type batch

type stats = {
  trials_used : int array;
      (** Estimator calls actually spent per tuple (0 for compiled-exact
          tuples), in clause-set order. *)
  exact_fraction : float;
      (** Share of the batch's total probability mass resolved in closed
          form: [1 − Σ residual_mass / Σ estimate].  [1] when nothing needed
          sampling (or the batch is empty / all-zero). *)
  intervals : (float * float) array;
      (** Per tuple, a sound [lo, hi] bracket on the true confidence holding
          with probability ≥ 1 − δ ({!Compile.outcome}).  A point for
          compiled-exact tuples; the a-priori compiled bracket for tuples
          whose sampling never ran (budget exhausted early, contained
          failure). *)
  achieved_eps : float array;
      (** Per tuple, the error actually certified: the requested relative ε
          on a complete run, the partial-trial relative ε′ under a budget,
          [0] for exact tuples.  For tuples where only the a-priori compiled
          bracket holds — quarantined, unreached, or sampling died — this is
          the bracket's {e absolute half-width}, the certificate actually in
          hand, so the stats line never over-claims precision (it is never
          the requested ε for a tuple that was not sampled). *)
  complete : bool;
      (** Every tuple met the requested (ε, δ) contract.  [false] means the
          run degraded somewhere — inspect [achieved_eps]/[intervals] —
          but the estimates and brackets are still sound. *)
}

val prepare : ?compile_fuel:int -> Wtable.t -> Assignment.t list array -> batch
(** Serial preparation: compiles each clause set ({!Compile.compile}, fuel
    default {!Compile.default_fuel}; [~compile_fuel:0] recovers the pure
    per-tuple FPRAS baseline) and forces the shared W-table alias cache,
    leaving the sampling phase read-only. *)

val size : batch -> int

val total_trials : batch -> eps:float -> delta:float -> int
(** Σ per-tuple fixed Chernoff budgets — what the {e uncompiled} FPRAS would
    pay.  The compiled run typically spends far less; compare against
    {!stats.trials_used}. *)

val run :
  ?budget:Budget.t -> ?nworkers:int -> Rng.t -> batch ->
  eps:float -> delta:float -> float array
(** Per-tuple (ε, δ) estimates, in the order of the prepared clause sets.
    [nworkers] defaults to {!Pool.default_workers}.
    @raise Invalid_argument when [eps <= 0], [delta <= 0] or [nworkers <= 0]. *)

val run_with_stats :
  ?budget:Budget.t -> ?nworkers:int -> Rng.t -> batch ->
  eps:float -> delta:float -> float array * stats
(** As {!run}, also reporting the per-tuple trial spend, the batch exact
    fraction, and the soundness brackets.

    With a [budget], all tuples charge the shared governor and the call is
    {e anytime}: on exhaustion the remaining sampling is cut short and
    every tuple still reports a sound interval — the partial-trial bracket
    for tuples cut mid-flight, the a-priori compiled bracket for tuples
    never reached — with [stats.complete = false].  Without a budget the
    estimates are bit-identical to previous releases.

    The call never throws because of a single tuple: per-tuple failures
    (including injected ones) are contained and degrade that tuple to its
    sound bracket; pool-level failures degrade the whole batch to the
    pre-filled brackets. *)

val batch_fpras :
  ?budget:Budget.t -> ?nworkers:int -> ?compile_fuel:int -> Rng.t ->
  Wtable.t -> Assignment.t list array -> eps:float -> delta:float ->
  float array
(** [prepare] + [run]. *)

val approx_confidences :
  ?budget:Budget.t -> ?nworkers:int -> ?compile_fuel:int -> Rng.t ->
  Wtable.t -> Urelation.t -> eps:float -> delta:float ->
  (Tuple.t * float) list
(** The approximate [conf(R)]: every possible tuple of [u] with its (ε, δ)
    confidence estimate, grouped via
    {!Pqdb_urel.Urelation.clauses_by_tuple}. *)

(** {1 Streaming, checkpointed execution}

    {!run_stream} processes a batch shard-at-a-time ({!Shard.plan}): only
    one shard's compiled trees and samplers are resident at a time, so
    memory is bounded by the shard cost ceiling rather than the batch, and
    results are pushed to [emit] incrementally.  Per-tuple RNG lanes are
    split over the whole batch up front, so without a budget the stream is
    {e bit-identical} to {!run_with_stats} — and, through the journal, to
    any interrupted-and-resumed replay of itself. *)

type stream_options = {
  shard_cost : int;
      (** Worst-case-trial ceiling per shard ({!Shard.plan}); bounds
          resident memory and the work a crash can lose.  Default 1e6. *)
  retries : int;
      (** Attempts after the first failure before a shard is quarantined
          (also the retry budget for journal appends).  Deterministic
          backoff {!Shard.backoff_s} between attempts.  Default 2. *)
  checkpoint : string option;
      (** Journal path ({!Pqdb_runtime.Checkpoint}): every completed shard
          is appended and fsync'd before [emit] sees it, so a killed process
          loses at most the shard in flight. *)
  resume : bool;
      (** Replay completed shards from [checkpoint] instead of recomputing
          them, then continue (and keep journaling) from the first gap. *)
}

val default_stream_options : stream_options

type stream_summary = {
  shards : int;
  resumed_shards : int;  (** replayed from the journal, not recomputed *)
  quarantined : (int * Pqdb_runtime.Pqdb_error.t) list;
      (** Shards that kept failing after their retry budget, with the last
          typed error.  Their tuples report a-priori brackets; they are not
          journaled, so a later resume retries them (self-healing). *)
  stream_trials : int;  (** estimator calls, journaled spend included *)
  stream_complete : bool;
      (** every shard ran (or replayed) to its (ε, δ) contract *)
  journal_ok : bool;
      (** [false] when journaling had to be abandoned mid-run (persistent
          append failure) — results are unaffected but the journal is
          incomplete. *)
}

val solve_shard :
  ?budget:Budget.t -> ?nworkers:int -> ?compile_fuel:int ->
  lanes:Rng.t array -> Wtable.t -> Assignment.t list array -> Shard.t ->
  fp:string -> eps:float -> delta:float -> Shard.outcome
(** One attempt at one shard over the whole-batch RNG lanes ([lanes] must be
    the [Rng.split_n] of the batch seed over {e all} tuples; the shard's
    slice is copied fresh internally).  This is the unit of work the stream
    loop, a retry, and a {!Pqdb_distrib.Worker} all execute: by the
    per-tuple-lane contract the outcome is bit-identical no matter which
    process runs it, in what order, or after how many failed attempts.
    [budget], if given, is the shard's already-sliced child budget — the
    caller charges its parent afterwards.  Fires the ["shard.run"] fault
    point; failures propagate for the caller's retry/quarantine policy. *)

val apriori_outcome :
  ?compile_fuel:int -> Wtable.t -> Assignment.t list array -> Shard.t ->
  fp:string -> error:exn -> Shard.outcome
(** The sound give-up outcome for a shard whose computation cannot be
    trusted: per-tuple a-priori compiled brackets (exact where compilation
    resolves the tuple, vacuous [0, 1] where even compiling fails), zero
    trials, [complete = false], and [error] typed into [quarantined].
    Deterministic, so the in-process stream and the distributed coordinator
    emit identical records for a shard quarantined anywhere. *)

val run_stream :
  ?budget:Budget.t -> ?nworkers:int -> ?compile_fuel:int ->
  ?options:stream_options -> Rng.t -> Wtable.t -> Assignment.t list array ->
  eps:float -> delta:float -> emit:(Shard.outcome -> unit) -> stream_summary
(** Stream the batch shard by shard, calling [emit] once per shard in plan
    order.  Each shard is compiled, solved on its tuples' RNG lanes (fresh
    lane copies per attempt, so retries replay the fault-free stream),
    journaled, then released before the next shard starts.

    With a [budget], each shard receives the fraction of the {e remaining}
    allowance proportional to its a-priori cost ({!Budget.split}) — the
    tail degrades evenly instead of first-come-first-served exhaustion;
    trial-only budgets keep the schedule deterministic.  A cancel-only
    budget is shared directly so cancellation takes effect mid-shard.

    Failures are contained at shard granularity: a shard that still raises
    after [retries] attempts is {e quarantined} — emitted with sound
    a-priori brackets and the typed error — and the stream continues.
    Exceptions from [emit] itself are not contained (the journal already
    holds the emitted shard, so a crashed consumer resumes cleanly).

    @raise Invalid_argument on bad (ε, δ), options, or [resume] without a
    [checkpoint] path.
    @raise Pqdb_runtime.Pqdb_error.Error ([Malformed_input] naming the
    journal path and record index) when resuming from a journal that is
    corrupt mid-file or was written by a different run (parameters,
    geometry or data fingerprint mismatch). *)

val run_stream_with_stats :
  ?budget:Budget.t -> ?nworkers:int -> ?compile_fuel:int ->
  ?options:stream_options -> Rng.t -> Wtable.t -> Assignment.t list array ->
  eps:float -> delta:float -> float array * stats * stream_summary
(** {!run_stream} collected into the {!run_with_stats} shape (plus the
    stream summary), for callers that want checkpointing/containment but a
    materialized result.  Without a budget the arrays are bit-identical to
    {!run_with_stats} on the same inputs. *)
