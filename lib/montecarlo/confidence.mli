(** Batched approximate confidence: the whole-U-relation compiled path.

    Where {!Karp_luby.fpras} answers one tuple by pure sampling, this module
    compiles every tuple's lineage first ({!Compile}): tuples that decompose
    fully are answered exactly for free, and only the irreducible residues
    are farmed to the adaptive Karp-Luby sampler over the domain pool.  Not
    to be confused with {!Pqdb_urel.Confidence}, the exact (#P-hard) solver.

    Determinism contract: every tuple gets its own
    {!Pqdb_numeric.Rng.split_n} child stream and its own output slot, and
    runs its residual budgets serially on one domain.  For a fixed parent
    RNG state (and fixed compilation fuel) the estimates are therefore
    bit-identical across runs {e and across pool sizes}; parallelism is
    across tuples only (shard a single huge tuple with
    {!Karp_luby.run_parallel} instead). *)

open Pqdb_numeric
open Pqdb_relational
open Pqdb_urel

type batch

type stats = {
  trials_used : int array;
      (** Estimator calls actually spent per tuple (0 for compiled-exact
          tuples), in clause-set order. *)
  exact_fraction : float;
      (** Share of the batch's total probability mass resolved in closed
          form: [1 − Σ residual_mass / Σ estimate].  [1] when nothing needed
          sampling (or the batch is empty / all-zero). *)
}

val prepare : ?compile_fuel:int -> Wtable.t -> Assignment.t list array -> batch
(** Serial preparation: compiles each clause set ({!Compile.compile}, fuel
    default {!Compile.default_fuel}; [~compile_fuel:0] recovers the pure
    per-tuple FPRAS baseline) and forces the shared W-table alias cache,
    leaving the sampling phase read-only. *)

val size : batch -> int

val total_trials : batch -> eps:float -> delta:float -> int
(** Σ per-tuple fixed Chernoff budgets — what the {e uncompiled} FPRAS would
    pay.  The compiled run typically spends far less; compare against
    {!stats.trials_used}. *)

val run : ?nworkers:int -> Rng.t -> batch -> eps:float -> delta:float -> float array
(** Per-tuple (ε, δ) estimates, in the order of the prepared clause sets.
    [nworkers] defaults to {!Pool.default_workers}.
    @raise Invalid_argument when [eps <= 0], [delta <= 0] or [nworkers <= 0]. *)

val run_with_stats :
  ?nworkers:int -> Rng.t -> batch -> eps:float -> delta:float ->
  float array * stats
(** As {!run}, also reporting the per-tuple trial spend and the batch exact
    fraction. *)

val batch_fpras :
  ?nworkers:int -> ?compile_fuel:int -> Rng.t -> Wtable.t ->
  Assignment.t list array -> eps:float -> delta:float -> float array
(** [prepare] + [run]. *)

val approx_confidences :
  ?nworkers:int -> ?compile_fuel:int -> Rng.t -> Wtable.t -> Urelation.t ->
  eps:float -> delta:float -> (Tuple.t * float) list
(** The approximate [conf(R)]: every possible tuple of [u] with its (ε, δ)
    confidence estimate, grouped via
    {!Pqdb_urel.Urelation.clauses_by_tuple}. *)
