(** Batched approximate confidence: the whole-U-relation compiled path.

    Where {!Karp_luby.fpras} answers one tuple by pure sampling, this module
    compiles every tuple's lineage first ({!Compile}): tuples that decompose
    fully are answered exactly for free, and only the irreducible residues
    are farmed to the adaptive Karp-Luby sampler over the domain pool.  Not
    to be confused with {!Pqdb_urel.Confidence}, the exact (#P-hard) solver.

    Determinism contract: every tuple gets its own
    {!Pqdb_numeric.Rng.split_n} child stream and its own output slot, and
    runs its residual budgets serially on one domain.  For a fixed parent
    RNG state (and fixed compilation fuel) the estimates are therefore
    bit-identical across runs {e and across pool sizes}; parallelism is
    across tuples only (shard a single huge tuple with
    {!Karp_luby.run_parallel} instead). *)

open Pqdb_numeric
open Pqdb_relational
open Pqdb_urel

type batch

type stats = {
  trials_used : int array;
      (** Estimator calls actually spent per tuple (0 for compiled-exact
          tuples), in clause-set order. *)
  exact_fraction : float;
      (** Share of the batch's total probability mass resolved in closed
          form: [1 − Σ residual_mass / Σ estimate].  [1] when nothing needed
          sampling (or the batch is empty / all-zero). *)
  intervals : (float * float) array;
      (** Per tuple, a sound [lo, hi] bracket on the true confidence holding
          with probability ≥ 1 − δ ({!Compile.outcome}).  A point for
          compiled-exact tuples; the a-priori compiled bracket for tuples
          whose sampling never ran (budget exhausted early, contained
          failure). *)
  achieved_eps : float array;
      (** Per tuple, the relative error actually certified: the requested ε
          on a complete run, the partial-trial ε′ under a budget, [infinity]
          when only the a-priori bracket holds, [0] for exact tuples. *)
  complete : bool;
      (** Every tuple met the requested (ε, δ) contract.  [false] means the
          run degraded somewhere — inspect [achieved_eps]/[intervals] —
          but the estimates and brackets are still sound. *)
}

val prepare : ?compile_fuel:int -> Wtable.t -> Assignment.t list array -> batch
(** Serial preparation: compiles each clause set ({!Compile.compile}, fuel
    default {!Compile.default_fuel}; [~compile_fuel:0] recovers the pure
    per-tuple FPRAS baseline) and forces the shared W-table alias cache,
    leaving the sampling phase read-only. *)

val size : batch -> int

val total_trials : batch -> eps:float -> delta:float -> int
(** Σ per-tuple fixed Chernoff budgets — what the {e uncompiled} FPRAS would
    pay.  The compiled run typically spends far less; compare against
    {!stats.trials_used}. *)

val run :
  ?budget:Budget.t -> ?nworkers:int -> Rng.t -> batch ->
  eps:float -> delta:float -> float array
(** Per-tuple (ε, δ) estimates, in the order of the prepared clause sets.
    [nworkers] defaults to {!Pool.default_workers}.
    @raise Invalid_argument when [eps <= 0], [delta <= 0] or [nworkers <= 0]. *)

val run_with_stats :
  ?budget:Budget.t -> ?nworkers:int -> Rng.t -> batch ->
  eps:float -> delta:float -> float array * stats
(** As {!run}, also reporting the per-tuple trial spend, the batch exact
    fraction, and the soundness brackets.

    With a [budget], all tuples charge the shared governor and the call is
    {e anytime}: on exhaustion the remaining sampling is cut short and
    every tuple still reports a sound interval — the partial-trial bracket
    for tuples cut mid-flight, the a-priori compiled bracket for tuples
    never reached — with [stats.complete = false].  Without a budget the
    estimates are bit-identical to previous releases.

    The call never throws because of a single tuple: per-tuple failures
    (including injected ones) are contained and degrade that tuple to its
    sound bracket; pool-level failures degrade the whole batch to the
    pre-filled brackets. *)

val batch_fpras :
  ?budget:Budget.t -> ?nworkers:int -> ?compile_fuel:int -> Rng.t ->
  Wtable.t -> Assignment.t list array -> eps:float -> delta:float ->
  float array
(** [prepare] + [run]. *)

val approx_confidences :
  ?budget:Budget.t -> ?nworkers:int -> ?compile_fuel:int -> Rng.t ->
  Wtable.t -> Urelation.t -> eps:float -> delta:float ->
  (Tuple.t * float) list
(** The approximate [conf(R)]: every possible tuple of [u] with its (ε, δ)
    confidence estimate, grouped via
    {!Pqdb_urel.Urelation.clauses_by_tuple}. *)
