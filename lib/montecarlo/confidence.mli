(** Batched approximate confidence: the whole-U-relation FPRAS path.

    Where {!Karp_luby.fpras} answers one tuple, this module prepares all the
    DNFs of a U-relation once — sharing the W table's per-variable alias
    tables across tuples — and farms the per-tuple trial budgets over one
    domain pool.  Not to be confused with {!Pqdb_urel.Confidence}, the exact
    (#P-hard) solver.

    Determinism contract: every tuple gets its own
    {!Pqdb_numeric.Rng.split_n} child stream and its own output slot, and
    runs its budget serially on one domain.  For a fixed parent RNG state the
    estimates are therefore bit-identical across runs {e and across pool
    sizes}; parallelism is across tuples only (shard a single huge tuple with
    {!Karp_luby.run_parallel} instead). *)

open Pqdb_numeric
open Pqdb_relational
open Pqdb_urel

type batch

val prepare : Wtable.t -> Assignment.t list array -> batch
(** Serial preparation: builds each DNF's sampling tables and forces the
    shared W-table alias cache, leaving the sampling phase read-only. *)

val size : batch -> int

val total_trials : batch -> eps:float -> delta:float -> int
(** Σ per-tuple Chernoff budgets — the estimator-call cost {!run} will pay. *)

val run : ?nworkers:int -> Rng.t -> batch -> eps:float -> delta:float -> float array
(** Per-tuple (ε, δ) estimates, in the order of the prepared clause sets.
    [nworkers] defaults to {!Pool.default_workers}.
    @raise Invalid_argument when [eps <= 0], [delta <= 0] or [nworkers <= 0]. *)

val batch_fpras :
  ?nworkers:int -> Rng.t -> Wtable.t -> Assignment.t list array ->
  eps:float -> delta:float -> float array
(** [prepare] + [run]. *)

val approx_confidences :
  ?nworkers:int -> Rng.t -> Wtable.t -> Urelation.t ->
  eps:float -> delta:float -> (Tuple.t * float) list
(** The approximate [conf(R)]: every possible tuple of [u] with its (ε, δ)
    confidence estimate, grouped via
    {!Pqdb_urel.Urelation.clauses_by_tuple}. *)
