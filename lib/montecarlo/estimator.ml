open Pqdb_numeric

type t = {
  dnf : Dnf.t;
  degenerate : float option;  (* known exact value for trivial DNFs *)
  mutable successes : int;
  mutable trials : int;
}

let create dnf =
  let degenerate =
    if Dnf.is_trivially_false dnf then Some 0.
    else if Dnf.is_trivially_true dnf then Some 1.
    else None
  in
  { dnf; degenerate; successes = 0; trials = 0 }

let dnf t = t.dnf
let is_degenerate t = t.degenerate <> None

let batch rng t n =
  match t.degenerate with
  | Some _ -> ()
  | None ->
      for _ = 1 to n do
        t.successes <- t.successes + Dnf.sample_estimator rng t.dnf
      done;
      t.trials <- t.trials + n

let step_round rng t = batch rng t (max 1 (Dnf.clause_count t.dnf))

let trials t = t.trials

let estimate t =
  match t.degenerate with
  | Some v -> v
  | None ->
      if t.trials = 0 then 0.
      else
        float_of_int t.successes *. Dnf.total_weight t.dnf
        /. float_of_int t.trials

let delta_bound t ~eps =
  match t.degenerate with
  | Some _ -> 0.
  | None ->
      if t.trials = 0 then 1.
      else
        Stats.karp_luby_delta ~trials:t.trials
          ~clauses:(Dnf.clause_count t.dnf) ~eps

let eps_bound t ~delta =
  match t.degenerate with
  | Some _ -> 0.
  | None ->
      if Dnf.clause_count t.dnf = 1 then 0.
      else if t.trials = 0 then 1.
      else
        (* Invert δ = 2·exp(−m·ε²/(3|F|)): the ε certified by m trials. *)
        sqrt
          (3. *. float_of_int (Dnf.clause_count t.dnf) *. log (2. /. delta)
          /. float_of_int t.trials)

let interval t ~delta =
  match t.degenerate with
  | Some v -> (v, v)
  | None ->
      if Dnf.clause_count t.dnf = 1 then
        (* A single clause is exact: p = M regardless of trials. *)
        let p = Dnf.total_weight t.dnf in
        (p, p)
      else
        let p = estimate t in
        let eps = eps_bound t ~delta in
        if eps >= 1. then (0., 1.)
        else
          (* |p̂ − p| ≤ ε·p rearranges to p ∈ [p̂/(1+ε), p̂/(1−ε)]. *)
          (Float.max 0. (p /. (1. +. eps)), Float.min 1. (p /. (1. -. eps)))

let trials_to_reach t ~eps ~delta =
  match t.degenerate with
  | Some _ -> 0
  | None ->
      let needed =
        Stats.karp_luby_trials ~clauses:(Dnf.clause_count t.dnf) ~eps ~delta
      in
      max 0 (needed - t.trials)
