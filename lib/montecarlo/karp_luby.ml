open Pqdb_numeric

let run rng dnf ~trials =
  if Dnf.is_trivially_false dnf then 0.
  else if Dnf.is_trivially_true dnf then 1.
  else begin
    if trials <= 0 then invalid_arg "Karp_luby.run: trials must be positive";
    let x = ref 0 in
    for _ = 1 to trials do
      x := !x + Dnf.sample_estimator rng dnf
    done;
    float_of_int !x *. Dnf.total_weight dnf /. float_of_int trials
  end

let run_parallel ?nworkers rng dnf ~trials =
  let nworkers =
    match nworkers with Some n -> n | None -> Pool.default_workers ()
  in
  if nworkers <= 0 then
    invalid_arg "Karp_luby.run_parallel: nworkers must be positive";
  if Dnf.is_trivially_false dnf then 0.
  else if Dnf.is_trivially_true dnf then 1.
  else begin
    if trials <= 0 then
      invalid_arg "Karp_luby.run_parallel: trials must be positive";
    (* Shard the trial budget over deterministic child streams.  Shard count,
       shard sizes and shard RNGs depend only on (rng state, nworkers,
       trials), and the per-shard success counts are summed as integers, so
       the estimate is bit-identical across runs and across schedulings. *)
    let nshards = min nworkers trials in
    let rngs = Rng.split_n rng nshards in
    let base = trials / nshards and extra = trials mod nshards in
    let successes = Array.make nshards 0 in
    Pool.run (Pool.create nshards) ~ntasks:nshards (fun i ->
        let m = base + if i < extra then 1 else 0 in
        let rng = rngs.(i) in
        let x = ref 0 in
        for _ = 1 to m do
          x := !x + Dnf.sample_estimator rng dnf
        done;
        successes.(i) <- !x);
    let x = Array.fold_left ( + ) 0 successes in
    float_of_int x *. Dnf.total_weight dnf /. float_of_int trials
  end

let trials_for dnf ~eps ~delta =
  if Dnf.is_trivially_false dnf || Dnf.is_trivially_true dnf then 0
  else
    Stats.karp_luby_trials ~clauses:(Dnf.clause_count dnf) ~eps ~delta

let fpras rng dnf ~eps ~delta =
  if eps <= 0. || delta <= 0. then invalid_arg "Karp_luby.fpras";
  if Dnf.is_trivially_false dnf then 0.
  else if Dnf.is_trivially_true dnf then 1.
  else run rng dnf ~trials:(trials_for dnf ~eps ~delta)

let fpras_parallel ?nworkers rng dnf ~eps ~delta =
  if eps <= 0. || delta <= 0. then invalid_arg "Karp_luby.fpras_parallel";
  if Dnf.is_trivially_false dnf then 0.
  else if Dnf.is_trivially_true dnf then 1.
  else run_parallel ?nworkers rng dnf ~trials:(trials_for dnf ~eps ~delta)

let confidence rng w clauses ~eps ~delta =
  fpras rng (Dnf.prepare w clauses) ~eps ~delta

(* ------------------------------------------------------------------ *)
(* Adaptive stopping (Dagum–Karp–Luby–Ross)                            *)
(* ------------------------------------------------------------------ *)

(* DKLR stopping rule on the 0/1 Karp-Luby estimator: run until the success
   count reaches Υ₁ = 1 + (1+ε)·4λ·ln(2/δ)/ε² (λ = e − 2) and estimate
   μ̂ = Υ₁/N, so the trial count adapts to the true mean μ = p/M instead of
   its worst case 1/|F|.  The [cap] keeps the loop bounded: if it is reached
   first, the plain sample mean at that fixed Chernoff budget is returned,
   which satisfies the same (ε, δ) bound by construction. *)
let stopping_rule rng dnf ~eps ~delta ~cap =
  let lambda = Float.exp 1. -. 2. in
  let ups = 4. *. lambda *. log (2. /. delta) /. (eps *. eps) in
  let ups1 = 1. +. ((1. +. eps) *. ups) in
  let target = int_of_float (Float.ceil ups1) in
  let s = ref 0 and n = ref 0 in
  while !s < target && !n < cap do
    s := !s + Dnf.sample_estimator rng dnf;
    incr n
  done;
  let m = Dnf.total_weight dnf in
  let estimate =
    if !s >= target then ups1 /. float_of_int !n *. m
    else if !n = 0 then 0.
    else float_of_int !s *. m /. float_of_int !n
  in
  (estimate, !n)

let adaptive rng dnf ~eps ~delta =
  if eps <= 0. || delta <= 0. then invalid_arg "Karp_luby.adaptive";
  if Dnf.is_trivially_false dnf then (0., 0)
  else if Dnf.is_trivially_true dnf then (1., 0)
  else if Dnf.clause_count dnf = 1 then
    (* The estimator always fires: p = M exactly, no trials needed. *)
    (Dnf.total_weight dnf, 0)
  else begin
    Pqdb_runtime.Faultpoint.fire "karp_luby.estimator";
    let clauses = Dnf.clause_count dnf in
    if eps >= 0.5 then
      (* Coarse targets: a single stopping-rule phase already beats the
         fixed budget and meets (ε, δ) on both exit paths. *)
      stopping_rule rng dnf ~eps ~delta
        ~cap:(Stats.karp_luby_trials ~clauses ~eps ~delta)
    else begin
      (* AA-style two-phase schedule.  Phase 1: a rough estimate at ε₁ = ½,
         spending δ/2.  Phase 2: a fresh Chernoff batch sized from the
         phase-1 lower bound on μ (floored at the unconditional 1/|F|),
         spending the remaining δ/2.  Union bound: the final estimate is
         within relative ε with probability ≥ 1 − δ. *)
      let eps1 = 0.5 and d2 = delta /. 2. in
      let p1, n1 =
        stopping_rule rng dnf ~eps:eps1 ~delta:d2
          ~cap:(Stats.karp_luby_trials ~clauses ~eps:eps1 ~delta:d2)
      in
      let m = Dnf.total_weight dnf in
      let mu_lo =
        Float.max (p1 /. m /. (1. +. eps1)) (1. /. float_of_int clauses)
      in
      let n2 =
        max 1
          (int_of_float
             (Float.ceil (3. *. log (4. /. delta) /. (eps *. eps *. mu_lo))))
      in
      let s = ref 0 in
      for _ = 1 to n2 do
        s := !s + Dnf.sample_estimator rng dnf
      done;
      (float_of_int !s *. m /. float_of_int n2, n1 + n2)
    end
  end

let fpras_adaptive rng dnf ~eps ~delta = fst (adaptive rng dnf ~eps ~delta)

(* ------------------------------------------------------------------ *)
(* Budget-governed estimation with partial-trial bounds                *)
(* ------------------------------------------------------------------ *)

type partial = {
  p_estimate : float;
  p_lo : float;
  p_hi : float;
  p_trials : int;
  p_eps : float;
  p_complete : bool;
}

let point p n =
  { p_estimate = p; p_lo = p; p_hi = p; p_trials = n; p_eps = 0.; p_complete = true }

(* [p̂] certified at relative error [eps] with confidence δ — the standard
   multiplicative inversion p ∈ [p̂/(1+ε), p̂/(1−ε)], clamped to [0, ub]. *)
let certified ~ub ~eps p n =
  let lo = Float.max 0. (p /. (1. +. eps)) in
  let hi = if eps >= 1. then ub else Float.min ub (p /. (1. -. eps)) in
  { p_estimate = p; p_lo = lo; p_hi = hi; p_trials = n; p_eps = eps; p_complete = true }

let adaptive_partial ?budget rng dnf ~eps ~delta =
  if eps <= 0. || delta <= 0. then invalid_arg "Karp_luby.adaptive_partial";
  match budget with
  | None ->
      (* No governor: delegate to [adaptive] (same RNG consumption, same
         estimate) and dress the result as a complete partial.  [adaptive]
         spends 0 trials exactly when the answer is exact. *)
      let p, n = adaptive rng dnf ~eps ~delta in
      if n = 0 then point p n
      else certified ~ub:(Float.min 1. (Dnf.total_weight dnf)) ~eps p n
  | Some b ->
      if Dnf.is_trivially_false dnf then point 0. 0
      else if Dnf.is_trivially_true dnf then point 1. 0
      else if Dnf.clause_count dnf = 1 then point (Dnf.total_weight dnf) 0
      else begin
        Pqdb_runtime.Faultpoint.fire "karp_luby.estimator";
        (* With few trials the raw estimate (s/n)·M can overshoot its own
           certified interval (even 1); clamp it in — projecting onto the
           interval never increases the error.  (The no-budget branch above
           keeps the raw estimate for bit-compatibility.) *)
        let clamp p =
          let lo = Float.min p.p_lo p.p_hi in
          { p with
            p_lo = lo;
            p_estimate = Float.min p.p_hi (Float.max lo p.p_estimate) }
        in
        let clauses = Dnf.clause_count dnf in
        let cap = Stats.karp_luby_trials ~clauses ~eps ~delta in
        (* Single DKLR phase at (ε, δ), polling the budget per trial. *)
        let lambda = Float.exp 1. -. 2. in
        let ups = 4. *. lambda *. log (2. /. delta) /. (eps *. eps) in
        let ups1 = 1. +. ((1. +. eps) *. ups) in
        let target = int_of_float (Float.ceil ups1) in
        let s = ref 0 and n = ref 0 in
        let out_of_budget = ref false in
        while (not !out_of_budget) && !s < target && !n < cap do
          if Budget.exhausted b then out_of_budget := true
          else begin
            s := !s + Dnf.sample_estimator rng dnf;
            incr n;
            Budget.spend b 1
          end
        done;
        let m = Dnf.total_weight dnf in
        let ub = Float.min 1. m in
        if !s >= target then
          clamp (certified ~ub ~eps (ups1 /. float_of_int !n *. m) !n)
        else if not !out_of_budget then
          (* Chernoff cap reached: the plain mean at the fixed budget meets
             (ε, δ) by construction. *)
          clamp
            (certified ~ub ~eps (float_of_int !s *. m /. float_of_int !n) !n)
        else if !n = 0 then
          (* Not one trial fit in the budget: the only sound claim is the
             a-priori interval [0, min(1, M)]. *)
          { p_estimate = 0.; p_lo = 0.; p_hi = ub; p_trials = 0;
            p_eps = Float.infinity; p_complete = false }
        else begin
          (* Partial trials: invert the Chernoff tail to the relative error
             the [n] trials actually certify at this δ,
             ε′ = √(3·|F|·ln(2/δ)/n). *)
          let n = !n in
          let p = float_of_int !s *. m /. float_of_int n in
          let eps' =
            sqrt (3. *. float_of_int clauses *. log (2. /. delta)
                  /. float_of_int n)
          in
          if eps' >= 1. then
            clamp
              { p_estimate = p; p_lo = 0.; p_hi = ub; p_trials = n;
                p_eps = eps'; p_complete = false }
          else
            clamp
              { p_estimate = p;
                p_lo = Float.max 0. (p /. (1. +. eps'));
                p_hi = Float.min ub (p /. (1. -. eps'));
                p_trials = n; p_eps = eps'; p_complete = eps' <= eps }
        end
      end
