open Pqdb_numeric

let run rng dnf ~trials =
  if Dnf.is_trivially_false dnf then 0.
  else if Dnf.is_trivially_true dnf then 1.
  else begin
    if trials <= 0 then invalid_arg "Karp_luby.run: trials must be positive";
    let x = ref 0 in
    for _ = 1 to trials do
      x := !x + Dnf.sample_estimator rng dnf
    done;
    float_of_int !x *. Dnf.total_weight dnf /. float_of_int trials
  end

let run_parallel ?nworkers rng dnf ~trials =
  let nworkers =
    match nworkers with Some n -> n | None -> Pool.default_workers ()
  in
  if nworkers <= 0 then
    invalid_arg "Karp_luby.run_parallel: nworkers must be positive";
  if Dnf.is_trivially_false dnf then 0.
  else if Dnf.is_trivially_true dnf then 1.
  else begin
    if trials <= 0 then
      invalid_arg "Karp_luby.run_parallel: trials must be positive";
    (* Shard the trial budget over deterministic child streams.  Shard count,
       shard sizes and shard RNGs depend only on (rng state, nworkers,
       trials), and the per-shard success counts are summed as integers, so
       the estimate is bit-identical across runs and across schedulings. *)
    let nshards = min nworkers trials in
    let rngs = Rng.split_n rng nshards in
    let base = trials / nshards and extra = trials mod nshards in
    let successes = Array.make nshards 0 in
    Pool.run (Pool.create nshards) ~ntasks:nshards (fun i ->
        let m = base + if i < extra then 1 else 0 in
        let rng = rngs.(i) in
        let x = ref 0 in
        for _ = 1 to m do
          x := !x + Dnf.sample_estimator rng dnf
        done;
        successes.(i) <- !x);
    let x = Array.fold_left ( + ) 0 successes in
    float_of_int x *. Dnf.total_weight dnf /. float_of_int trials
  end

let trials_for dnf ~eps ~delta =
  if Dnf.is_trivially_false dnf || Dnf.is_trivially_true dnf then 0
  else
    Stats.karp_luby_trials ~clauses:(Dnf.clause_count dnf) ~eps ~delta

let fpras rng dnf ~eps ~delta =
  if eps <= 0. || delta <= 0. then invalid_arg "Karp_luby.fpras";
  if Dnf.is_trivially_false dnf then 0.
  else if Dnf.is_trivially_true dnf then 1.
  else run rng dnf ~trials:(trials_for dnf ~eps ~delta)

let fpras_parallel ?nworkers rng dnf ~eps ~delta =
  if eps <= 0. || delta <= 0. then invalid_arg "Karp_luby.fpras_parallel";
  if Dnf.is_trivially_false dnf then 0.
  else if Dnf.is_trivially_true dnf then 1.
  else run_parallel ?nworkers rng dnf ~trials:(trials_for dnf ~eps ~delta)

let confidence rng w clauses ~eps ~delta =
  fpras rng (Dnf.prepare w clauses) ~eps ~delta
