(** A DNF of partial assignments prepared for Karp-Luby sampling.

    [F = {f₁, …, fₛ}] is the set of conditions of one tuple in a U-relation;
    the tuple's confidence is the total weight of worlds covered by at least
    one clause.  Preparation fixes the clause order (Definition 4.1 breaks
    ties by smallest index), computes [M = Σ p_f], and builds the sampling
    tables. *)

open Pqdb_numeric
open Pqdb_urel

type t

val prepare : Wtable.t -> Assignment.t list -> t
(** Clause order is the list order. *)

val wtable : t -> Wtable.t
(** The W table the DNF was prepared against — lets consumers (the confidence
    compiler, top-k) recompile or condition the clause set. *)

val clause_count : t -> int
(** [|F|] — the FPRAS trial counts scale linearly in it. *)

val total_weight : t -> float
(** [M = Σ_f p_f]. *)

val is_trivially_false : t -> bool
(** No clauses: confidence 0. *)

val is_trivially_true : t -> bool
(** Contains the empty clause: confidence 1. *)

val variables : t -> Wtable.var list
val clauses : t -> Assignment.t list

val sample_estimator : Rng.t -> t -> int
(** One Karp-Luby trial (Definition 4.1): draw a clause [f] proportionally to
    [p_f], extend it to a total assignment [f*] by sampling the unassigned
    variables from W, and return 1 iff [f] is the smallest-index clause
    consistent with [f*].  The result is an unbiased estimator of [p/M].
    @raise Invalid_argument on a trivially false DNF. *)

val exact : t -> Rational.t
(** Exact confidence (delegates to {!Pqdb_urel.Confidence}); for tests and
    error measurement. *)
