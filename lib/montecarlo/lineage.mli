(** Structural normalization of lineage DNFs, in the spirit of Koch &
    Olteanu's ws-tree decompositions: the cheap, always-sound rewrites the
    confidence compiler ({!Compile}) applies before deciding whether a clause
    set needs Monte-Carlo sampling at all.

    A DNF here is a list of {!Pqdb_urel.Assignment} clauses over the
    independent W-table variables; its probability is the weight of the union
    of the clauses' world sets. *)

open Pqdb_urel

val normalize : Assignment.t list -> Assignment.t list
(** Deduplicate (structural equality), collapse to [[Assignment.empty]] when
    some clause is empty (trivially true), and drop subsumed clauses: [b] is
    redundant when some other clause [a] has [Assignment.subsumes a b].
    Subsumption is skipped above an internal size cap (quadratic pass); the
    result is then still equivalent, just possibly redundant. *)

val components : Assignment.t list -> Assignment.t list list
(** Partition clauses into variable-connected components (union-find over the
    clauses' variables).  Components mention pairwise-disjoint variable sets,
    so they are independent events: [P(⋁ components) = 1 − Π (1 − Pᵢ)].
    Deterministic order (first clause occurrence).  [components [] = [[]]]. *)

val universal_var : Assignment.t list -> Wtable.var option
(** A variable bound in {e every} clause (smallest id when several).
    Expanding on it is free — each branch strictly shrinks all surviving
    clauses — and the branches are mutually disjoint events. *)

val most_shared_var : Assignment.t list -> Wtable.var option
(** The variable occurring in the most clauses (smallest id on ties): the
    DPLL-style pivot for bounded Shannon expansion.  [None] iff the clause
    set has no variables. *)

val condition : Assignment.t list -> Wtable.var -> int -> Assignment.t list
(** [condition cs v x]: the residual DNF under [v = x] — clauses demanding
    another value drop, the binding on [v] is removed from the rest. *)
