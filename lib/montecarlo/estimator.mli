(** Incremental Karp-Luby estimator state — the refinable values consumed by
    the Figure-3 predicate-approximation algorithm.

    The algorithm of Figure 3 interleaves batches of [|Fᵢ|] estimator calls
    per approximable value with ε recomputation; this module keeps the running
    trial count and success sum so each batch just continues the walk.  The
    current error bound after [m] trials at relative width [ε] is
    [δᵢ(ε) = 2·exp(−m·ε²/(3·|Fᵢ|))]. *)

open Pqdb_numeric

type t

val create : Dnf.t -> t
val dnf : t -> Dnf.t

val is_degenerate : t -> bool
(** Trivially true/false DNFs need no sampling and have error 0. *)

val batch : Rng.t -> t -> int -> unit
(** Run [n] more estimator calls (no-op on degenerate DNFs). *)

val step_round : Rng.t -> t -> unit
(** One Figure-3 round: [|Fᵢ|] estimator calls. *)

val trials : t -> int
val estimate : t -> float
(** Current [p̂ = X·M/m]; exact 0/1 for degenerate DNFs; 0 before any
    trial. *)

val delta_bound : t -> eps:float -> float
(** [δᵢ(ε)] after the trials so far (0 for degenerate DNFs). *)

val eps_bound : t -> delta:float -> float
(** The relative half-width certified by the trials so far at failure budget
    [delta]: [√(3|F|·ln(2/δ)/m)] — the inverse of {!delta_bound}.  [0] for
    degenerate and single-clause DNFs (they are exact), [1] before any
    trial. *)

val interval : t -> delta:float -> float * float
(** Confidence interval [[p̂/(1+ε), p̂/(1−ε)] ∩ [0, 1]] at the certified
    [ε = eps_bound t ~delta]; degenerate and single-clause DNFs give a point
    interval, and [ε ≥ 1] gives the vacuous [[0, 1]].  Used by the top-k
    engine to prune candidates without fixing trial budgets up front. *)

val trials_to_reach : t -> eps:float -> delta:float -> int
(** Additional trials needed so that [delta_bound] drops to [delta]. *)
