open Pqdb_numeric
open Pqdb_urel

type t = {
  w : Wtable.t;
  clauses : Assignment.t array;
  weights : float array;  (* p_f per clause *)
  total : float;  (* M *)
  dist : Rng.Alias.dist option;  (* clause sampler; None when F = ∅ *)
  vars : int array;  (* union of clause variables *)
  var_alias : Rng.Alias.dist array;  (* per vars slot; shared via the W cache *)
  slot_of_var : (int, int) Hashtbl.t;  (* var id -> index into a sample *)
}

let prepare w clause_list =
  let clauses = Array.of_list clause_list in
  let weights = Array.map (Assignment.weight_float w) clauses in
  let total = Array.fold_left ( +. ) 0. weights in
  let vars =
    Array.of_list
      (List.sort_uniq compare
         (List.concat_map Assignment.vars clause_list))
  in
  (* Forcing the W-table alias cache here keeps the sampling phase read-only,
     so prepared DNFs can be drawn from concurrently by several domains. *)
  let var_alias = Array.map (Wtable.alias w) vars in
  let slot_of_var = Hashtbl.create (Array.length vars) in
  Array.iteri (fun i v -> Hashtbl.replace slot_of_var v i) vars;
  let dist =
    if Array.length clauses = 0 then None
    else Some (Rng.Alias.of_weights weights)
  in
  { w; clauses; weights; total; dist; vars; var_alias; slot_of_var }

let wtable t = t.w
let clause_count t = Array.length t.clauses
let total_weight t = t.total
let is_trivially_false t = Array.length t.clauses = 0
let is_trivially_true t = Array.exists Assignment.is_empty t.clauses
let variables t = Array.to_list t.vars
let clauses t = Array.to_list t.clauses

let sample_estimator rng t =
  match t.dist with
  | None -> invalid_arg "Dnf.sample_estimator: empty DNF"
  | Some dist ->
      (* Step 1: clause index proportional to p_f (alias method, O(1)). *)
      let i = Rng.Alias.sample rng dist in
      let f = t.clauses.(i) in
      (* Step 2: extend to a total assignment over the DNF's variables,
         sampling unassigned ones from their W alias tables. *)
      let total = Array.make (Array.length t.vars) 0 in
      Array.iteri
        (fun slot v ->
          match Assignment.value f v with
          | Some x -> total.(slot) <- x
          | None -> total.(slot) <- Rng.Alias.sample rng t.var_alias.(slot))
        t.vars;
      let lookup v = total.(Hashtbl.find t.slot_of_var v) in
      (* Step 3: 1 iff f is the smallest-index clause consistent with f*. *)
      let rec smallest j =
        if j >= i then true
        else if Assignment.extended_by lookup t.clauses.(j) then false
        else smallest (j + 1)
      in
      if smallest 0 then 1 else 0

(* Fully qualified: [Confidence] unqualified would resolve to this library's
   batched-confidence module and create a dependency cycle. *)
let exact t = Pqdb_urel.Confidence.exact t.w (Array.to_list t.clauses)
