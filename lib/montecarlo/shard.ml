open Pqdb_numeric
open Pqdb_urel
module Checkpoint = Pqdb_runtime.Checkpoint
module Pqdb_error = Pqdb_runtime.Pqdb_error

type t = { index : int; first : int; count : int; cost : int }

let tuple_cost ~eps ~delta clauses =
  match clauses with
  | [] -> 1
  | cs when List.exists Assignment.is_empty cs -> 1
  | cs -> 1 + Stats.karp_luby_trials ~clauses:(List.length cs) ~eps ~delta

let plan ~eps ~delta ~max_cost clause_sets =
  if max_cost < 1 then invalid_arg "Shard.plan: max_cost must be >= 1";
  let n = Array.length clause_sets in
  let shards = ref [] in
  let nshards = ref 0 in
  let first = ref 0 in
  let count = ref 0 in
  let cost = ref 0 in
  let flush () =
    if !count > 0 then begin
      shards :=
        { index = !nshards; first = !first; count = !count; cost = !cost }
        :: !shards;
      incr nshards;
      first := !first + !count;
      count := 0;
      cost := 0
    end
  in
  for i = 0 to n - 1 do
    let c = tuple_cost ~eps ~delta clause_sets.(i) in
    if !count > 0 && !cost + c > max_cost then flush ();
    incr count;
    cost := !cost + c
  done;
  flush ();
  Array.of_list (List.rev !shards)

let fingerprint clause_sets sh =
  let buf = Buffer.create 256 in
  for i = sh.first to sh.first + sh.count - 1 do
    List.iter
      (fun a ->
        Buffer.add_string buf (Udb_io.condition_to_string a);
        Buffer.add_char buf '|')
      clause_sets.(i);
    Buffer.add_char buf '/'
  done;
  Checkpoint.crc32_hex (Buffer.contents buf)

type outcome = {
  shard : t;
  fp : string;
  estimates : float array;
  intervals : (float * float) array;
  trials : int array;
  achieved : float array;
  masses : float array;
  complete : bool;
  resumed : bool;
  quarantined : Pqdb_error.t option;
}

(* --- serialization ------------------------------------------------------ *)

let floats_csv a =
  String.concat "," (List.map (Printf.sprintf "%h") (Array.to_list a))

let ints_csv a = String.concat "," (List.map string_of_int (Array.to_list a))

let to_payload o =
  if o.quarantined <> None then
    invalid_arg "Shard.to_payload: quarantined outcomes are never journaled";
  let lo = Array.map fst o.intervals and hi = Array.map snd o.intervals in
  Printf.sprintf
    "shard=%d first=%d count=%d cost=%d fp=%s complete=%d est=%s lo=%s \
     hi=%s tr=%s ae=%s ms=%s"
    o.shard.index o.shard.first o.shard.count o.shard.cost o.fp
    (if o.complete then 1 else 0)
    (floats_csv o.estimates) (floats_csv lo) (floats_csv hi)
    (ints_csv o.trials) (floats_csv o.achieved) (floats_csv o.masses)

let of_payload ~source ~record s =
  let fail detail =
    Pqdb_error.malformed ~source (Printf.sprintf "record %d: %s" record detail)
  in
  let kv tok =
    match String.index_opt tok '=' with
    | Some i ->
        (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
    | None -> fail (Printf.sprintf "bad field %S" tok)
  in
  let fields =
    String.split_on_char ' ' s
    |> List.filter (fun t -> t <> "")
    |> List.map kv
  in
  let get k =
    match List.assoc_opt k fields with
    | Some v -> v
    | None -> fail ("missing field " ^ k)
  in
  let int_field k =
    match int_of_string_opt (get k) with
    | Some i -> i
    | None -> fail (Printf.sprintf "field %s: not an integer (%S)" k (get k))
  in
  let float_array k n =
    let parts = String.split_on_char ',' (get k) in
    if List.length parts <> n then
      fail (Printf.sprintf "field %s: expected %d values" k n);
    Array.of_list
      (List.map
         (fun v ->
           match float_of_string_opt v with
           | Some f -> f
           | None -> fail (Printf.sprintf "field %s: bad float %S" k v))
         parts)
  in
  let int_array k n =
    let parts = String.split_on_char ',' (get k) in
    if List.length parts <> n then
      fail (Printf.sprintf "field %s: expected %d values" k n);
    Array.of_list
      (List.map
         (fun v ->
           match int_of_string_opt v with
           | Some i -> i
           | None -> fail (Printf.sprintf "field %s: bad integer %S" k v))
         parts)
  in
  let index = int_field "shard" in
  let first = int_field "first" in
  let count = int_field "count" in
  let cost = int_field "cost" in
  if index < 0 || first < 0 || count < 1 || cost < 0 then
    fail "negative or empty shard geometry";
  let fp = get "fp" in
  if String.length fp <> 8 then fail "field fp: expected 8 hex digits";
  let complete =
    match int_field "complete" with
    | 0 -> false
    | 1 -> true
    | _ -> fail "field complete: expected 0 or 1"
  in
  let estimates = float_array "est" count in
  let lo = float_array "lo" count in
  let hi = float_array "hi" count in
  let trials = int_array "tr" count in
  let achieved = float_array "ae" count in
  let masses = float_array "ms" count in
  {
    shard = { index; first; count; cost };
    fp;
    estimates;
    intervals = Array.init count (fun i -> (lo.(i), hi.(i)));
    trials;
    achieved;
    masses;
    complete;
    resumed = true;
    quarantined = None;
  }

let meta_payload ~n ~eps ~delta ~fuel ~shard_cost =
  Printf.sprintf "meta n=%d eps=%h delta=%h fuel=%s shard_cost=%d" n eps delta
    (match fuel with None -> "default" | Some f -> string_of_int f)
    shard_cost

let backoff_s ~attempt =
  if attempt <= 0 then 0.
  else Float.min 0.1 (0.005 *. Float.pow 2. (float_of_int (attempt - 1)))
