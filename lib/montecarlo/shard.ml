open Pqdb_numeric
open Pqdb_urel
module Checkpoint = Pqdb_runtime.Checkpoint
module Pqdb_error = Pqdb_runtime.Pqdb_error

type t = { index : int; first : int; count : int; cost : int }

let tuple_cost ~eps ~delta clauses =
  match clauses with
  | [] -> 1
  | cs when List.exists Assignment.is_empty cs -> 1
  | cs -> 1 + Stats.karp_luby_trials ~clauses:(List.length cs) ~eps ~delta

let plan ~eps ~delta ~max_cost clause_sets =
  if max_cost < 1 then invalid_arg "Shard.plan: max_cost must be >= 1";
  let n = Array.length clause_sets in
  let shards = ref [] in
  let nshards = ref 0 in
  let first = ref 0 in
  let count = ref 0 in
  let cost = ref 0 in
  let flush () =
    if !count > 0 then begin
      shards :=
        { index = !nshards; first = !first; count = !count; cost = !cost }
        :: !shards;
      incr nshards;
      first := !first + !count;
      count := 0;
      cost := 0
    end
  in
  for i = 0 to n - 1 do
    let c = tuple_cost ~eps ~delta clause_sets.(i) in
    if !count > 0 && !cost + c > max_cost then flush ();
    incr count;
    cost := !cost + c
  done;
  flush ();
  Array.of_list (List.rev !shards)

let fingerprint clause_sets sh =
  let buf = Buffer.create 256 in
  for i = sh.first to sh.first + sh.count - 1 do
    List.iter
      (fun a ->
        Buffer.add_string buf (Udb_io.condition_to_string a);
        Buffer.add_char buf '|')
      clause_sets.(i);
    Buffer.add_char buf '/'
  done;
  Checkpoint.crc32_hex (Buffer.contents buf)

type outcome = {
  shard : t;
  fp : string;
  estimates : float array;
  intervals : (float * float) array;
  trials : int array;
  achieved : float array;
  masses : float array;
  complete : bool;
  resumed : bool;
  quarantined : Pqdb_error.t option;
}

(* --- serialization ------------------------------------------------------ *)

let floats_csv a =
  String.concat "," (List.map (Printf.sprintf "%h") (Array.to_list a))

let ints_csv a = String.concat "," (List.map string_of_int (Array.to_list a))

let to_payload o =
  if o.quarantined <> None then
    invalid_arg "Shard.to_payload: quarantined outcomes are never journaled";
  let lo = Array.map fst o.intervals and hi = Array.map snd o.intervals in
  Printf.sprintf
    "shard=%d first=%d count=%d cost=%d fp=%s complete=%d est=%s lo=%s \
     hi=%s tr=%s ae=%s ms=%s"
    o.shard.index o.shard.first o.shard.count o.shard.cost o.fp
    (if o.complete then 1 else 0)
    (floats_csv o.estimates) (floats_csv lo) (floats_csv hi)
    (ints_csv o.trials) (floats_csv o.achieved) (floats_csv o.masses)

let of_payload ?(resumed = true) ~source ~record s =
  let fail detail =
    Pqdb_error.malformed ~source (Printf.sprintf "record %d: %s" record detail)
  in
  let kv tok =
    match String.index_opt tok '=' with
    | Some i ->
        (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
    | None -> fail (Printf.sprintf "bad field %S" tok)
  in
  let fields =
    String.split_on_char ' ' s
    |> List.filter (fun t -> t <> "")
    |> List.map kv
  in
  let get k =
    match List.assoc_opt k fields with
    | Some v -> v
    | None -> fail ("missing field " ^ k)
  in
  let int_field k =
    match int_of_string_opt (get k) with
    | Some i -> i
    | None -> fail (Printf.sprintf "field %s: not an integer (%S)" k (get k))
  in
  let float_array k n =
    let parts = String.split_on_char ',' (get k) in
    if List.length parts <> n then
      fail (Printf.sprintf "field %s: expected %d values" k n);
    Array.of_list
      (List.map
         (fun v ->
           match float_of_string_opt v with
           | Some f -> f
           | None -> fail (Printf.sprintf "field %s: bad float %S" k v))
         parts)
  in
  let int_array k n =
    let parts = String.split_on_char ',' (get k) in
    if List.length parts <> n then
      fail (Printf.sprintf "field %s: expected %d values" k n);
    Array.of_list
      (List.map
         (fun v ->
           match int_of_string_opt v with
           | Some i -> i
           | None -> fail (Printf.sprintf "field %s: bad integer %S" k v))
         parts)
  in
  let index = int_field "shard" in
  let first = int_field "first" in
  let count = int_field "count" in
  let cost = int_field "cost" in
  if index < 0 || first < 0 || count < 1 || cost < 0 then
    fail "negative or empty shard geometry";
  let fp = get "fp" in
  if String.length fp <> 8 then fail "field fp: expected 8 hex digits";
  let complete =
    match int_field "complete" with
    | 0 -> false
    | 1 -> true
    | _ -> fail "field complete: expected 0 or 1"
  in
  let estimates = float_array "est" count in
  let lo = float_array "lo" count in
  let hi = float_array "hi" count in
  let trials = int_array "tr" count in
  let achieved = float_array "ae" count in
  let masses = float_array "ms" count in
  {
    shard = { index; first; count; cost };
    fp;
    estimates;
    intervals = Array.init count (fun i -> (lo.(i), hi.(i)));
    trials;
    achieved;
    masses;
    complete;
    resumed;
    quarantined = None;
  }

let meta_payload ~n ~eps ~delta ~fuel ~shard_cost =
  Printf.sprintf "meta n=%d eps=%h delta=%h fuel=%s shard_cost=%d" n eps delta
    (match fuel with None -> "default" | Some f -> string_of_int f)
    shard_cost

let backoff_s ~attempt =
  if attempt <= 0 then 0.
  else Float.min 0.1 (0.005 *. Float.pow 2. (float_of_int (attempt - 1)))

(* --- journal lifecycle -------------------------------------------------- *)

type journal = {
  mutable jw : Checkpoint.writer option;
  mutable ok : bool;
  retries : int;
}

let null_journal () = { jw = None; ok = true; retries = 0 }

let journal_ok j = j.ok

let journal_append j payload =
  match j.jw with
  | None -> ()
  | Some wtr ->
      let rec go attempt =
        match Checkpoint.append wtr payload with
        | () -> ()
        | exception _ ->
            if attempt >= j.retries then begin
              (* Journaling is an aid, not a contract: a persistently
                 failing journal is abandoned and the computation continues
                 (reported via journal_ok). *)
              j.ok <- false;
              j.jw <- None;
              try Checkpoint.close wtr with _ -> ()
            end
            else begin
              Unix.sleepf (backoff_s ~attempt:(attempt + 1));
              go (attempt + 1)
            end
      in
      go 0

let close_journal j =
  match j.jw with
  | None -> ()
  | Some wtr ->
      j.jw <- None;
      Checkpoint.close wtr

let validate_records ~source ~plan ~clause_sets records =
  let resumed : (int, outcome) Hashtbl.t = Hashtbl.create 16 in
  List.iteri
    (fun k payload ->
      let record = k + 1 in
      let o = of_payload ~source ~record payload in
      let idx = o.shard.index in
      match Hashtbl.find_opt resumed idx with
      | Some prev ->
          (* Identical duplicates (a crash between fsync and the caller's
             bookkeeping can legitimately replay a shard) resolve
             first-wins; conflicting ones are corruption. *)
          if not (String.equal (to_payload prev) payload) then
            Pqdb_error.malformed ~source
              (Printf.sprintf "record %d: conflicting duplicate of shard %d"
                 record idx)
      | None ->
          if idx < 0 || idx >= Array.length plan then
            Pqdb_error.malformed ~source
              (Printf.sprintf "record %d: unknown shard %d" record idx);
          let expected = plan.(idx) in
          if expected.first <> o.shard.first || expected.count <> o.shard.count
          then
            Pqdb_error.malformed ~source
              (Printf.sprintf
                 "record %d: shard %d geometry does not match the plan" record
                 idx);
          if not (String.equal (fingerprint clause_sets expected) o.fp) then
            Pqdb_error.malformed ~source
              (Printf.sprintf
                 "record %d: shard %d fingerprint does not match the data"
                 record idx);
          Hashtbl.add resumed idx o)
    records;
  resumed

let open_journal ?(retries = 2) ~resume ~meta ~plan ~clause_sets path =
  let wtr, payloads = Checkpoint.open_writer ~resume path in
  let j = { jw = Some wtr; ok = true; retries } in
  match payloads with
  | [] ->
      journal_append j meta;
      (j, Hashtbl.create 1)
  | stored_meta :: records -> (
      match
        if not (String.equal stored_meta meta) then
          Pqdb_error.malformed ~source:path
            (Printf.sprintf
               "journal parameters do not match this run (journal %S, run %S)"
               stored_meta meta);
        validate_records ~source:path ~plan ~clause_sets records
      with
      | resumed -> (j, resumed)
      | exception e ->
          (try close_journal j with _ -> ());
          raise e)

let compact_journal path =
  match Checkpoint.read path with
  | [] ->
      Pqdb_error.malformed ~source:path
        "cannot compact an empty or missing journal"
  | meta :: records ->
      (* Latest-per-shard with the same duplicate policy as resume:
         identical duplicates collapse, conflicting ones are corruption —
         a compacted journal must resume exactly like the original. *)
      let tbl : (int, string) Hashtbl.t = Hashtbl.create 16 in
      List.iteri
        (fun k payload ->
          let record = k + 1 in
          let o = of_payload ~source:path ~record payload in
          let idx = o.shard.index in
          match Hashtbl.find_opt tbl idx with
          | Some prev ->
              if not (String.equal prev payload) then
                Pqdb_error.malformed ~source:path
                  (Printf.sprintf
                     "record %d: conflicting duplicate of shard %d" record idx)
          | None -> Hashtbl.replace tbl idx payload)
        records;
      let idxs = List.sort compare (Hashtbl.fold (fun i _ a -> i :: a) tbl []) in
      let tmp = path ^ ".compact" in
      let wtr, _ = Checkpoint.open_writer tmp in
      (try
         Checkpoint.append wtr meta;
         List.iter (fun i -> Checkpoint.append wtr (Hashtbl.find tbl i)) idxs;
         Checkpoint.close wtr
       with e ->
         (try Checkpoint.close wtr with _ -> ());
         (try Sys.remove tmp with _ -> ());
         raise e);
      Unix.rename tmp path;
      let kept = 1 + List.length idxs in
      (kept, 1 + List.length records - kept)
