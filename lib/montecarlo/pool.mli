(** A resident fork-join domain pool for the confidence engine.

    A fixed set of worker domains is spawned lazily on first use — sized to
    [Domain.recommended_domain_count () - 1] (the caller is the remaining
    worker), overridable with the [PQDB_POOL_WORKERS] environment variable —
    and kept alive for the life of the process (torn down via [at_exit]).
    [run] posts a job to those residents: task indices are claimed in chunks
    through an atomic counter, the calling domain participates, and the call
    returns when every task has executed.  Spawning a domain costs far more
    than a typical job on this engine's workloads, which is why workers are
    resident rather than per-call.

    A pool value is just a cap: [run] uses at most [size t - 1] helpers (and
    never more than the resident count, or [ntasks - 1]).  With no available
    helpers — a 1-worker pool, a single task, one recommended domain, or a
    nested/concurrent [run] — the tasks run inline on the caller, spawning
    nothing.  Tasks must write results to disjoint slots (or otherwise not
    race): the pool provides no synchronisation beyond the claim counter and
    the completion barrier.

    Determinism note: callers that want bit-reproducible results give each
    task its own {!Pqdb_numeric.Rng} stream and its own output slot; which
    domain runs which task then cannot affect the outcome. *)

type t

val create : int -> t
(** @raise Invalid_argument when the worker count is not positive. *)

val size : t -> int

val default_workers : unit -> int
(** [Domain.recommended_domain_count], floored at 1. *)

val resident_workers : unit -> int
(** The number of live resident helper domains, starting them if needed.
    [0] means every [run] executes inline on the calling domain. *)

val run : t -> ntasks:int -> (int -> unit) -> unit
(** [run t ~ntasks f] executes [f 0 … f (ntasks-1)], each exactly once, on
    the caller plus up to [min (size t - 1) (resident_workers ())] helper
    domains, and waits for all of them.  Exceptions are contained per task:
    a failing task never prevents the remaining tasks from running, and
    after the job has drained the first observed failure is re-raised as
    [Pqdb_runtime.Pqdb_error.(Error (Task_failure {index; inner}))] with the
    failing task's original backtrace.  The inline (no-helper) path honours
    the same contract.
    @raise Invalid_argument when [ntasks] is negative. *)

val reset : unit -> unit
(** Test hook: join and discard the resident workers and forget that the
    pool ever started, so the next {!run} re-reads [PQDB_POOL_WORKERS] and
    re-spawns.  Must not be called concurrently with {!run}. *)
