(** A minimal fork-join domain pool for the confidence engine.

    [run] fans a task index range out over up to [size] OCaml 5 domains via
    an atomic work-stealing counter; the calling domain participates, so a
    pool of size 1 degenerates to a plain loop with no spawns.  Domains are
    spawned per [run] call and joined before it returns — there are no idle
    resident workers, and a pool value is just a size, cheap to create and
    to discard.  Tasks must write results to disjoint slots (or otherwise
    not race): the pool provides no synchronisation beyond the counter and
    the join.

    Determinism note: callers that want bit-reproducible results give each
    task its own {!Pqdb_numeric.Rng} stream and its own output slot; which
    domain runs which task then cannot affect the outcome. *)

type t

val create : int -> t
(** @raise Invalid_argument when the worker count is not positive. *)

val size : t -> int

val default_workers : unit -> int
(** [Domain.recommended_domain_count], floored at 1. *)

val run : t -> ntasks:int -> (int -> unit) -> unit
(** [run t ~ntasks f] executes [f 0 … f (ntasks-1)], each exactly once, on
    up to [size t] domains, and waits for all of them.  If any task raises,
    the first observed exception is re-raised after every domain has been
    joined (remaining tasks may still run). *)
