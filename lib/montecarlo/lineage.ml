open Pqdb_urel

(* Quadratic-pass guard: subsumption is O(n² · clause length); above this
   size we keep possibly-redundant clauses rather than stall compilation. *)
let subsumption_cap = 512

let drop_subsumed clauses =
  let arr = Array.of_list clauses in
  let n = Array.length arr in
  if n <= 1 || n > subsumption_cap then clauses
  else begin
    let keep = Array.make n true in
    for i = 0 to n - 1 do
      if keep.(i) then
        for j = 0 to n - 1 do
          if j <> i && keep.(j) && Assignment.subsumes arr.(i) arr.(j) then
            keep.(j) <- false
        done
    done;
    let out = ref [] in
    for i = n - 1 downto 0 do
      if keep.(i) then out := arr.(i) :: !out
    done;
    !out
  end

let normalize clauses =
  let clauses = List.sort_uniq Assignment.compare clauses in
  if List.exists Assignment.is_empty clauses then [ Assignment.empty ]
  else drop_subsumed clauses

let components clauses =
  match clauses with
  | [] | [ _ ] -> [ clauses ]
  | _ ->
      let arr = Array.of_list clauses in
      let n = Array.length arr in
      let parent = Array.init n Fun.id in
      let rec find i = if parent.(i) = i then i else find parent.(i) in
      let union i j =
        let ri = find i and rj = find j in
        if ri <> rj then parent.(ri) <- rj
      in
      let owner = Hashtbl.create 16 in
      Array.iteri
        (fun i clause ->
          Assignment.iter_vars
            (fun v ->
              match Hashtbl.find_opt owner v with
              | Some j -> union i j
              | None -> Hashtbl.add owner v i)
            clause)
        arr;
      (* Group by root in first-occurrence order: compilation (and therefore
         the residual numbering the sampler walks) is deterministic. *)
      let buckets = Hashtbl.create 8 in
      let roots = ref [] in
      Array.iteri
        (fun i clause ->
          let r = find i in
          match Hashtbl.find_opt buckets r with
          | Some cell -> cell := clause :: !cell
          | None ->
              Hashtbl.add buckets r (ref [ clause ]);
              roots := r :: !roots)
        arr;
      List.rev_map (fun r -> List.rev !(Hashtbl.find buckets r)) !roots

let var_counts clauses =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun clause ->
      Assignment.iter_vars
        (fun v ->
          Hashtbl.replace counts v
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
        clause)
    clauses;
  counts

(* Both pickers break ties on the smallest variable id so compilation is a
   pure function of the clause set. *)
let universal_var clauses =
  let n = List.length clauses in
  let counts = var_counts clauses in
  Hashtbl.fold
    (fun v c best ->
      if c < n then best
      else match best with Some v' when v' <= v -> best | _ -> Some v)
    counts None

let most_shared_var clauses =
  let counts = var_counts clauses in
  Hashtbl.fold
    (fun v c best ->
      match best with
      | Some (v', c') when c' > c || (c' = c && v' <= v) -> best
      | _ -> Some (v, c))
    counts None
  |> Option.map fst

let condition clauses v x =
  List.filter_map
    (fun clause ->
      match Assignment.value clause v with
      | Some y when y <> x -> None
      | Some _ -> Some (Assignment.remove clause v)
      | None -> Some clause)
    clauses
