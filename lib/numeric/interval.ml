type t = { lo : float; hi : float }

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi || lo > hi then
    invalid_arg "Interval.make"
  else { lo; hi }

let point x = make x x
let mem x { lo; hi } = lo <= x && x <= hi
let width { lo; hi } = hi -. lo
let center { lo; hi } = (lo +. hi) /. 2.
let intersects a b = a.lo <= b.hi && b.lo <= a.hi
let contains outer inner = outer.lo <= inner.lo && inner.hi <= outer.hi
let pp fmt { lo; hi } = Format.fprintf fmt "[%g, %g]" lo hi

let clamp ~lo:l ~hi:h { lo; hi } =
  if l > h then invalid_arg "Interval.clamp"
  else make (Float.min h (Float.max l lo)) (Float.max l (Float.min h hi))

let difference a b = make (a.lo -. b.hi) (a.hi -. b.lo)

let ratio ~num ~den =
  if den.lo <= 0. then invalid_arg "Interval.ratio: denominator not above 0"
  else make (Float.max 0. num.lo /. den.hi) (Float.max 0. num.hi /. den.lo)

let relative ~eps p_hat =
  let a = p_hat /. (1. +. eps) and b = p_hat /. (1. -. eps) in
  if a <= b then make a b else make b a

let absolute_relative ~eps p =
  let a = p *. (1. -. eps) and b = p *. (1. +. eps) in
  if a <= b then make a b else make b a

type orthotope = t array

let orthotope_relative ~eps point = Array.map (relative ~eps) point
let orthotope_absolute ~eps point = Array.map (absolute_relative ~eps) point
let corner_count o = 1 lsl Array.length o
let mem_point p o = Array.for_all2 (fun x iv -> mem x iv) p o

let corners o =
  let k = Array.length o in
  let n = 1 lsl k in
  let corner i =
    Array.init k (fun j -> if (i lsr j) land 1 = 0 then o.(j).lo else o.(j).hi)
  in
  Seq.init n corner

let sample draw o = Array.map (fun iv -> draw iv.lo iv.hi) o
