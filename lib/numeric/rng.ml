type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x9e3779b9; seed lxor 0x5deece66d |]
let split t = Random.State.make [| Random.State.bits t; Random.State.bits t |]

let split_n t n =
  if n <= 0 then invalid_arg "Rng.split_n: n must be positive";
  let a = Random.State.bits t and b = Random.State.bits t in
  Array.init n (fun i -> Random.State.make [| a; b; i; 0x9e3779b9 |])
let copy = Random.State.copy
let int t bound = Random.State.int t bound
let float t bound = Random.State.float t bound
let float_range t lo hi = lo +. Random.State.float t (hi -. lo)
let bool t = Random.State.bool t

let bernoulli t p =
  if p <= 0. then false
  else if p >= 1. then true
  else Random.State.float t 1. < p

module Discrete = struct
  type dist = { cumulative : float array; total : float }

  let of_weights weights =
    let n = Array.length weights in
    if n = 0 then invalid_arg "Rng.Discrete.of_weights: empty";
    let cumulative = Array.make n 0. in
    let acc = ref 0. in
    for i = 0 to n - 1 do
      if weights.(i) < 0. then
        invalid_arg "Rng.Discrete.of_weights: negative weight";
      acc := !acc +. weights.(i);
      cumulative.(i) <- !acc
    done;
    if !acc <= 0. then invalid_arg "Rng.Discrete.of_weights: zero total";
    { cumulative; total = !acc }

  let total d = d.total
  let size d = Array.length d.cumulative

  let sample t d =
    let x = Random.State.float t d.total in
    (* Smallest index with cumulative.(i) > x. *)
    let rec search lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if d.cumulative.(mid) > x then search lo mid else search (mid + 1) hi
      end
    in
    search 0 (Array.length d.cumulative - 1)
end

module Alias = struct
  type dist = { prob : float array; alias : int array; total : float }

  (* Vose's stable construction: scale weights to mean 1, then pair each
     deficient column with a surplus one. *)
  let of_weights weights =
    let n = Array.length weights in
    if n = 0 then invalid_arg "Rng.Alias.of_weights: empty";
    let total = ref 0. in
    Array.iter
      (fun w ->
        if w < 0. then invalid_arg "Rng.Alias.of_weights: negative weight";
        total := !total +. w)
      weights;
    if !total <= 0. then invalid_arg "Rng.Alias.of_weights: zero total";
    let scale = float_of_int n /. !total in
    let scaled = Array.map (fun w -> w *. scale) weights in
    let prob = Array.make n 1. in
    let alias = Array.init n Fun.id in
    let small = Stack.create () and large = Stack.create () in
    Array.iteri
      (fun i p -> Stack.push i (if p < 1. then small else large))
      scaled;
    while (not (Stack.is_empty small)) && not (Stack.is_empty large) do
      let s = Stack.pop small and l = Stack.pop large in
      prob.(s) <- scaled.(s);
      alias.(s) <- l;
      scaled.(l) <- scaled.(l) -. (1. -. scaled.(s));
      Stack.push l (if scaled.(l) < 1. then small else large)
    done;
    (* Leftover columns are 1 up to rounding; prob is already 1 there. *)
    { prob; alias; total = !total }

  let total d = d.total
  let size d = Array.length d.prob

  let sample t d =
    let i = Random.State.int t (Array.length d.prob) in
    if Random.State.float t 1. < d.prob.(i) then i else d.alias.(i)
end
