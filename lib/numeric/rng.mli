(** Seeded random number generation for reproducible Monte-Carlo runs.

    A thin layer over [Random.State] adding the discrete distributions the
    Karp-Luby estimator needs: weighted choice over a cumulative table, and
    Bernoulli draws.  Every experiment in the bench harness threads an
    explicit [Rng.t] so that runs are reproducible bit-for-bit. *)

type t

val create : seed:int -> t
val split : t -> t
(** A fresh generator deterministically derived from (and advancing) the
    parent — used to give independent streams to independent estimators. *)

val split_n : t -> int -> t array
(** [split_n t n] is [n] fresh generators derived deterministically from the
    parent's current state (which advances once): for a fixed parent state the
    children's streams are reproducible and pairwise independent.  This is how
    parallel Karp-Luby gives each worker its own stream while staying
    bit-deterministic for a fixed (seed, worker count).
    @raise Invalid_argument when [n <= 0]. *)

val copy : t -> t
val int : t -> int -> int
(** Uniform on [\[0, bound)]. *)

val float : t -> float -> float
(** Uniform on [\[0, bound)]. *)

val float_range : t -> float -> float -> float
(** Uniform on [\[lo, hi\]]. *)

val bool : t -> bool
val bernoulli : t -> float -> bool
(** [bernoulli rng p] is true with probability [p] (clamped to [0,1]). *)

(** {1 Weighted discrete choice} *)

module Discrete : sig
  type dist
  (** A discrete distribution over indices [0..n-1] prepared for O(log n)
      sampling via a cumulative-sum table. *)

  val of_weights : float array -> dist
  (** @raise Invalid_argument if weights are negative or all zero. *)

  val total : dist -> float
  val sample : t -> dist -> int
  val size : dist -> int
end

(** {1 Walker alias method}

    O(1)-per-draw weighted choice (two uniforms and two array reads),
    against {!Discrete}'s O(log n) cumulative search.  Preparation is O(n).
    This is the sampler on the Karp-Luby hot path: W-table domains and DNF
    clause distributions are drawn millions of times per confidence batch. *)

module Alias : sig
  type dist

  val of_weights : float array -> dist
  (** @raise Invalid_argument if weights are negative or all zero. *)

  val total : dist -> float
  (** Sum of the input weights. *)

  val sample : t -> dist -> int
  val size : dist -> int
end
