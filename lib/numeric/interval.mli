(** Closed float intervals and the relative-error orthotopes of Section 5.

    Lemma 5.1 bounds the error of a predicate decision by the probability mass
    outside the axis-parallel orthotope
    [(p̂₁/(1+ε), p̂₁/(1−ε)) × … × (p̂ₖ/(1+ε), p̂ₖ/(1−ε))]; this module provides
    the interval arithmetic used to build, test and enumerate the corners of
    such orthotopes. *)

type t = { lo : float; hi : float }

val make : float -> float -> t
(** [make lo hi]; @raise Invalid_argument if [lo > hi] or either is NaN. *)

val point : float -> t
val mem : float -> t -> bool
val width : t -> float
val center : t -> float
val intersects : t -> t -> bool
val contains : t -> t -> bool
(** [contains outer inner]. *)

val pp : Format.formatter -> t -> unit

val clamp : lo:float -> hi:float -> t -> t
(** Intersect with [\[lo, hi\]]; an interval entirely outside collapses to
    the nearer bound.  @raise Invalid_argument when [lo > hi]. *)

val difference : t -> t -> t
(** [difference a b] encloses [x − y] for any [x ∈ a], [y ∈ b]:
    [\[a.lo − b.hi, a.hi − b.lo\]].  The conditioning layer uses it for the
    Theorem 4.4 difference [Pr(φ) − Pr(φ ∧ ¬ψ)] of two anytime brackets. *)

val ratio : num:t -> den:t -> t
(** Encloses [x / y] for [x ∈ num ∩ \[0, ∞)], [y ∈ den], assuming
    [den.lo > 0]: [\[max(0, num.lo)/den.hi, max(0, num.hi)/den.lo\]] — the
    sound bracket for a renormalized (conditioned) probability.
    @raise Invalid_argument when [den.lo <= 0] (the caller must first rule
    out a zero or sign-indefinite denominator; see
    [Pqdb_runtime.Pqdb_error.Unsatisfiable_condition]). *)

val relative : eps:float -> float -> t
(** [relative ~eps p_hat] is the Lemma 5.1 interval
    [\[p̂/(1+ε), p̂/(1−ε)\]] (for [p_hat >= 0] and [0 <= eps < 1]).
    For negative [p_hat] the endpoints are swapped so the result is a valid
    interval. *)

val absolute_relative : eps:float -> float -> t
(** [absolute_relative ~eps p] is [\[p·(1−ε), p·(1+ε)\]] — the Definition 5.6
    singularity neighbourhood [{x : |p − x| <= ε·p}] around the {e true}
    value. *)

(** {1 Orthotopes} *)

type orthotope = t array

val orthotope_relative : eps:float -> float array -> orthotope
val orthotope_absolute : eps:float -> float array -> orthotope

val corners : orthotope -> float array Seq.t
(** All 2{^k} corner points, lazily. *)

val corner_count : orthotope -> int
val mem_point : float array -> orthotope -> bool
val sample : (float -> float -> float) -> orthotope -> float array
(** [sample draw o] picks a point via [draw lo hi] per axis (used by
    property tests with a RNG-backed [draw]). *)
