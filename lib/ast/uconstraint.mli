(** First-class integrity constraints for conditioning (the [assert]
    operator of Koch & Olteanu, "Conditioning Probabilistic Databases").

    A constraint restricts the world set; confidences are then renormalized
    over the surviving worlds.  Three forms:

    {ul
    {- [Fd] — a functional dependency [key → determined] on a base table,
       compiled to its egd {e violation} query (Theorem 4.4) by the
       conditioning layer;}
    {- [Denial q] — a Boolean (nullary is not required; only emptiness is
       tested) positive query that must return {e no} tuples in a surviving
       world;}
    {- [Holds q] — a positive query that must return {e at least one} tuple
       in a surviving world.}}

    Constraint queries live in the positive, confidence-free fragment: no
    [minus], no [conf]/[aconf]/[aselect], no [repairkey], no [poss]/[cert].
    {!validate} enforces this. *)

type t =
  | Fd of { table : string; key : string list; determined : string list }
  | Denial of Ua.t
  | Holds of Ua.t

val fd : table:string -> key:string list -> determined:string list -> t
(** @raise Invalid_argument on an empty key or determined list. *)

val validate : t -> unit
(** @raise Invalid_argument when a member query falls outside the positive
    confidence-free fragment (see above). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Renders in the concrete [assert] syntax of the query language:
    [fd[K -> D](table)], [empty(q)], [(q)]. *)

val to_string : t -> string

val set_fingerprint : t list -> string
(** Canonical fingerprint of a constraint {e set}: order- and
    duplicate-insensitive (conjunction is commutative and idempotent), [""]
    for the empty set.  Equal fingerprints mean identical constraint sets,
    so the string is safe to fold into compiled-lineage cache keys. *)
