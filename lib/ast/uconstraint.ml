type t =
  | Fd of { table : string; key : string list; determined : string list }
  | Denial of Ua.t
  | Holds of Ua.t

let fd ~table ~key ~determined =
  if key = [] then invalid_arg "Uconstraint.fd: empty key";
  if determined = [] then invalid_arg "Uconstraint.fd: empty determined list";
  Fd { table; key; determined }

(* Constraints must denote events over the *current* world set: positive
   queries with no confidence computation, no approximation and no
   uncertainty introduction.  Anything else either is outside the fragment
   the Theorem 4.4 rewriting covers (Diff) or would change / sample the
   very distribution being conditioned (RepairKey, Conf, aconf, aselect). *)
let rec check_query q =
  let recurse = check_query in
  match q with
  | Ua.Table _ | Ua.Lit _ -> ()
  | Ua.Select (_, q) | Ua.Project (_, q) | Ua.Rename (_, q) -> recurse q
  | Ua.Product (a, b) | Ua.Join (a, b) | Ua.Union (a, b) ->
      recurse a;
      recurse b
  | Ua.Diff _ -> invalid_arg "constraint queries must be positive (no minus)"
  | Ua.Conf _ | Ua.ApproxConf _ ->
      invalid_arg "constraint queries must not compute confidences"
  | Ua.RepairKey _ ->
      invalid_arg "constraint queries must not introduce uncertainty"
  | Ua.Poss _ | Ua.Cert _ ->
      invalid_arg "constraint queries must not collapse the world set"
  | Ua.ApproxSelect _ ->
      invalid_arg "constraint queries must not approximate"

let validate = function
  | Fd { key; determined; _ } ->
      if key = [] || determined = [] then
        invalid_arg "Uconstraint: fd needs nonempty key and determined lists"
  | Denial q | Holds q -> check_query q

let equal (a : t) (b : t) = a = b

let pp fmt = function
  | Fd { table; key; determined } ->
      Format.fprintf fmt "fd[%s -> %s](%s)" (String.concat ", " key)
        (String.concat ", " determined)
        table
  | Denial q -> Format.fprintf fmt "empty(%a)" Ua.pp q
  | Holds q -> Format.fprintf fmt "(%a)" Ua.pp q

let to_string c = Format.asprintf "%a" pp c

(* The set fingerprint is order- and duplicate-insensitive: constraint
   semantics is conjunctive, so {c1; c2} and {c2; c1; c1} condition on the
   same event and must share cache entries. *)
let set_fingerprint items =
  match List.sort_uniq compare (List.map to_string items) with
  | [] -> ""
  | rendered -> String.concat " & " rendered
