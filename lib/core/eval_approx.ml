open Pqdb_numeric
open Pqdb_relational
open Pqdb_urel
module Ua = Pqdb_ast.Ua
module Apred = Pqdb_ast.Apred

let log_src = Logs.Src.create "pqdb.eval" ~doc:"approximate query evaluation"

module Log = (val Logs.src_log log_src : Logs.LOG)

module TMap = Map.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

module TSet = Set.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

type stats = {
  mutable decisions : int;
  mutable estimator_calls : int;
  mutable round_limit_hits : int;
}

type result = {
  urel : Urelation.t;
  errors : (Tuple.t * float) list;
  suspects : Tuple.t list;
  unreliable : bool;
}

(* Internal annotated relation: per-data-tuple error bound and suspect set. *)
type ann = {
  au : Urelation.t;
  mu : float TMap.t;
  susp : TSet.t;
  unrel : bool;
}

let mu_of ann t = Option.value ~default:0. (TMap.find_opt t ann.mu)
let cap x = Float.min 0.5 x

let add_mu map t v =
  if v <= 0. then map
  else
    TMap.update t
      (function None -> Some (cap v) | Some old -> Some (cap (old +. v)))
      map

let reliable au = { au; mu = TMap.empty; susp = TSet.empty; unrel = false }

let max_error r =
  List.fold_left (fun acc (_, e) -> Float.max acc e) 0. r.errors

let error_of r t =
  List.fold_left
    (fun acc (s, e) -> if Tuple.equal s t then Float.max acc e else acc)
    0. r.errors

(* Projection positions of [attrs] within [schema]. *)
let positions schema attrs = List.map (Schema.index schema) attrs

let project_mu ~out_of ann =
  (* out_of : input tuple -> output tuple *)
  TMap.fold (fun t v acc -> add_mu acc (out_of t) v) ann.mu TMap.empty

let sigma_hat_eval ?budget ~eps0 ~max_rounds ~sigma_delta ~rng ~stats w
    { Ua.phi; conf_args; input = _ } input_ann =
  let u = input_ann.au in
  let schema = Urelation.schema u in
  let branches =
    List.map (fun attrs -> Translate.project_attrs attrs u) conf_args
  in
  let poss_branches = List.map Translate.poss branches in
  let candidates =
    match poss_branches with
    | [] -> invalid_arg "sigma-hat with no conf arguments"
    | first :: rest -> List.fold_left Algebra.join first rest
  in
  let cand_schema = Relation.schema candidates in
  let arg_positions =
    List.map (fun attrs -> positions cand_schema attrs) conf_args
  in
  (* Error contribution of the input per candidate: for each conf argument,
     the summed μ of input tuples projecting onto the candidate's key. *)
  let input_poss = Urelation.possible_tuples u in
  let in_positions = List.map (fun attrs -> positions schema attrs) conf_args in
  let selected = ref [] in
  let mu = ref TMap.empty in
  let susp = ref TSet.empty in
  Relation.iter
    (fun cand ->
      let estimators =
        Array.of_list
          (List.map2
             (fun branch pos ->
               let key = Tuple.project cand pos in
               let clauses = Urelation.clauses_for branch key in
               Pqdb_montecarlo.Estimator.create
                 (Pqdb_montecarlo.Dnf.prepare w clauses))
             branches arg_positions)
      in
      let decision =
        Predicate_approx.decide ?budget ~eps0 ?max_rounds ~rng
          ~delta:sigma_delta phi estimators
      in
      stats.decisions <- stats.decisions + 1;
      stats.estimator_calls <- stats.estimator_calls + decision.estimator_calls;
      if decision.hit_round_limit then
        stats.round_limit_hits <- stats.round_limit_hits + 1;
      (* Lemma 6.4(2): decision error + input membership errors. *)
      let input_contrib = ref 0. in
      let inherited_suspect = ref false in
      List.iteri
        (fun i in_pos ->
          let key = Tuple.project cand (List.nth arg_positions i) in
          List.iter
            (fun s ->
              if Tuple.equal (Tuple.project s in_pos) key then begin
                input_contrib := !input_contrib +. mu_of input_ann s;
                if TSet.mem s input_ann.susp then inherited_suspect := true
              end)
            input_poss)
        in_positions;
      let err = cap (decision.error_bound +. !input_contrib) in
      let suspect =
        decision.hit_round_limit || decision.used_floor || !inherited_suspect
      in
      (* Suspects are recorded whether or not the tuple was selected: a
         rejected boundary tuple is exactly the "absent from the result"
         error the caller should know about. *)
      if suspect then susp := TSet.add cand !susp;
      if decision.value then begin
        selected := (Assignment.empty, cand) :: !selected;
        mu := add_mu !mu cand err
      end)
    candidates;
  {
    au = Urelation.make cand_schema !selected;
    mu = !mu;
    susp = !susp;
    unrel = true;
  }

let conf_row t p value_of = Tuple.concat t (Tuple.of_list [ value_of p ])

let conf_like a confs value_of =
  if Schema.mem (Urelation.schema a.au) "P" then
    raise
      (Eval_exact.Unsupported
         "conf: the input already has a P column; rename it first");
  let out_schema =
    Schema.of_list (Schema.attributes (Urelation.schema a.au) @ [ "P" ])
  in
  let rows =
    List.map
      (fun (t, p) -> (Assignment.empty, conf_row t p value_of))
      confs
  in
  let mu =
    List.fold_left
      (fun acc (t, p) -> add_mu acc (conf_row t p value_of) (mu_of a t))
      TMap.empty confs
  in
  let susp =
    List.fold_left
      (fun acc (t, p) ->
        if TSet.mem t a.susp then TSet.add (conf_row t p value_of) acc
        else acc)
      TSet.empty confs
  in
  { au = Urelation.make out_schema rows; mu; susp; unrel = a.unrel }

(* Each ApproxConf occurrence gets its own journal: the first keeps the
   caller's path untouched (the common single-aconf query), later ones get a
   deterministic [.aconf<k>] suffix.  Traversal order is deterministic and
   memoized subtrees consume one ordinal, so a resumed run numbers the nodes
   identically. *)
let stream_options_for stream aconf_ord =
  match stream with
  | None -> None
  | Some (o : Pqdb_montecarlo.Confidence.stream_options) ->
      let k = !aconf_ord in
      incr aconf_ord;
      let checkpoint =
        Option.map
          (fun p -> if k = 0 then p else Printf.sprintf "%s.aconf%d" p k)
          o.checkpoint
      in
      Some { o with checkpoint }

(* Structurally identical subexpressions denote the same relation: memoize
   so shared repair-keys create one set of variables and shared sigma-hats
   decide once. *)
let rec eval_ann ?budget ?stream ~aconf_ord ~cache ~eps0 ~max_rounds
    ~sigma_delta ~rng ~stats udb (q : Ua.t) : ann =
  let key = Format.asprintf "%a" Ua.pp q in
  match Hashtbl.find_opt cache key with
  | Some a -> a
  | None ->
      let a =
        eval_ann_raw ?budget ?stream ~aconf_ord ~cache ~eps0 ~max_rounds
          ~sigma_delta ~rng ~stats udb q
      in
      Hashtbl.replace cache key a;
      a

and eval_ann_raw ?budget ?stream ~aconf_ord ~cache ~eps0 ~max_rounds
    ~sigma_delta ~rng ~stats udb (q : Ua.t) : ann =
  let recur q =
    eval_ann ?budget ?stream ~aconf_ord ~cache ~eps0 ~max_rounds ~sigma_delta
      ~rng ~stats udb q
  in
  let w = Udb.wtable udb in
  match q with
  | Ua.Table _ | Ua.Lit _ -> reliable (Eval_exact.eval udb q)
  | Ua.Select (p, q) ->
      let a = recur q in
      { a with au = Translate.select p a.au }
  | Ua.Project (cols, q) ->
      let a = recur q in
      let in_schema = Urelation.schema a.au in
      let exprs = List.map fst cols in
      let out_of t =
        Tuple.of_list (List.map (Expr.eval in_schema t) exprs)
      in
      let au = Translate.project cols a.au in
      let susp =
        TSet.fold
          (fun t acc -> TSet.add (out_of t) acc)
          a.susp TSet.empty
      in
      { a with au; mu = project_mu ~out_of a; susp }
  | Ua.Rename (m, q) ->
      let a = recur q in
      { a with au = Translate.rename m a.au }
  | Ua.Product (l, r) -> binary ~recur `Product l r
  | Ua.Join (l, r) -> binary ~recur `Join l r
  | Ua.Union (l, r) ->
      let a = recur l and b = recur r in
      {
        au = Translate.union a.au b.au;
        mu = TMap.fold (fun t v acc -> add_mu acc t v) b.mu a.mu;
        susp = TSet.union a.susp b.susp;
        unrel = a.unrel || b.unrel;
      }
  | Ua.Diff (l, r) -> begin
      let a = recur l and b = recur r in
      match Translate.diff_complete a.au b.au with
      | au ->
          {
            au;
            mu = TMap.fold (fun t v acc -> add_mu acc t v) b.mu a.mu;
            susp = TSet.union a.susp b.susp;
            unrel = a.unrel || b.unrel;
          }
      | exception Invalid_argument _ ->
          raise
            (Eval_exact.Unsupported
               "difference is only supported on complete relations (use -c)")
    end
  | Ua.Conf q ->
      let a = recur q in
      let confs = Confidence.all_confidences w a.au in
      conf_like a confs (fun p -> Value.Rat p)
  | Ua.ApproxConf ({ eps; delta }, q) ->
      let a = recur q in
      (* Streaming compiled batch: tuples are sharded by a-priori cost and
         compiled/solved shard-at-a-time (bounded resident memory, optional
         crash-recovery journal); tuples that decompose fully are answered
         exactly and only the residues are sampled, adaptively, over the
         domain pool.  Without a budget this is bit-identical to the old
         materialized run; with one, the remaining allowance is split
         across shards proportionally to their cost. *)
      let groups = Urelation.clauses_by_tuple a.au in
      let estimates, cstats, _summary =
        Pqdb_montecarlo.Confidence.run_stream_with_stats ?budget
          ?options:(stream_options_for stream aconf_ord) rng w
          (Array.of_list (List.map snd groups))
          ~eps ~delta
      in
      stats.estimator_calls <-
        stats.estimator_calls
        + Array.fold_left ( + ) 0 cstats.Pqdb_montecarlo.Confidence.trials_used;
      let approx = List.mapi (fun i (t, _) -> (t, estimates.(i))) groups in
      let ann = conf_like a approx (fun p -> Value.Float p) in
      (* Tuples the governor (or a contained failure) kept from reaching the
         requested ε are singularity-style suspects: their P value only
         carries the wider achieved bound (Section 6: unreliability is
         reported as added uncertainty, not as a crash). *)
      let ann =
        if cstats.Pqdb_montecarlo.Confidence.complete then ann
        else
          let achieved = cstats.Pqdb_montecarlo.Confidence.achieved_eps in
          let susp =
            List.fold_left
              (fun acc (i, (t, _)) ->
                if achieved.(i) > eps then
                  TSet.add
                    (conf_row t estimates.(i) (fun p -> Value.Float p))
                    acc
                else acc)
              ann.susp
              (List.mapi (fun i g -> (i, g)) groups)
          in
          { ann with susp }
      in
      (* The reported P is outside the ε-relative interval with probability
         at most δ on top of the input's membership error. *)
      let mu =
        TMap.fold
          (fun t v acc -> TMap.add t (cap (v +. delta)) acc)
          ann.mu TMap.empty
      in
      let mu =
        List.fold_left
          (fun acc (t, _) ->
            let p =
              match List.find_opt (fun (s, _) -> Tuple.equal s t) approx with
              | Some (_, p) -> p
              | None -> assert false
            in
            let row = conf_row t p (fun p -> Value.Float p) in
            if TMap.mem row acc then acc else TMap.add row delta acc)
          mu approx
      in
      { ann with mu; unrel = true }
  | Ua.RepairKey { key; weight; query } -> begin
      let a = recur query in
      if a.unrel then
        raise
          (Eval_exact.Unsupported
             "repair-key above an approximate selection is not supported \
              (footnote 3)");
      match Translate.repair_key w ~key ~weight a.au with
      | au -> { a with au }
      | exception Invalid_argument msg -> raise (Eval_exact.Unsupported msg)
    end
  | Ua.Poss q ->
      let a = recur q in
      { a with au = Urelation.of_relation (Translate.poss a.au) }
  | Ua.Cert q ->
      let a = recur q in
      let certain =
        List.filter_map
          (fun (t, p) ->
            if Rational.equal p Rational.one then Some t else None)
          (Confidence.all_confidences w a.au)
      in
      {
        a with
        au =
          Urelation.of_relation
            (Relation.of_list (Urelation.schema a.au) certain);
      }
  | Ua.ApproxSelect sh ->
      let input_ann = recur sh.input in
      sigma_hat_eval ?budget ~eps0 ~max_rounds ~sigma_delta ~rng ~stats w sh
        input_ann

and binary ~recur kind l r =  let a = recur l and b = recur r in
  let au =
    match kind with
    | `Product -> Translate.product a.au b.au
    | `Join -> Translate.join a.au b.au
  in
  (* Recompute per-output-tuple bounds from the possible tuples of both
     sides (Lemma 6.4(1): sum over provenance). *)
  let sa = Urelation.schema a.au and sb = Urelation.schema b.au in
  let shared = Schema.common sa sb in
  let sa_shared = positions sa shared and sb_shared = positions sb shared in
  let sb_only =
    List.filter (fun x -> not (List.mem x shared)) (Schema.attributes sb)
  in
  let sb_only_pos = positions sb sb_only in
  let mu = ref TMap.empty and susp = ref TSet.empty in
  List.iter
    (fun ta ->
      List.iter
        (fun tb ->
          let matches =
            match kind with
            | `Product -> true
            | `Join ->
                Tuple.equal (Tuple.project ta sa_shared)
                  (Tuple.project tb sb_shared)
          in
          if matches then begin
            let out =
              match kind with
              | `Product -> Tuple.concat ta tb
              | `Join -> Tuple.concat ta (Tuple.project tb sb_only_pos)
            in
            let v = mu_of a ta +. mu_of b tb in
            mu := add_mu !mu out v;
            if TSet.mem ta a.susp || TSet.mem tb b.susp then
              susp := TSet.add out !susp
          end)
        (Urelation.possible_tuples b.au))
    (Urelation.possible_tuples a.au);
  { au; mu = !mu; susp = !susp; unrel = a.unrel || b.unrel }

let fresh_stats () = { decisions = 0; estimator_calls = 0; round_limit_hits = 0 }

let result_of_ann a =
  let poss = Urelation.possible_tuples a.au in
  {
    urel = a.au;
    errors = List.map (fun t -> (t, mu_of a t)) poss;
    suspects = TSet.elements a.susp;
    unreliable = a.unrel;
  }

let eval ?budget ?stream ?(eps0 = 0.05) ?max_rounds ?(sigma_delta = 0.05) ~rng
    udb q =
  if Ua.has_sigma_hat_below_repair_key q then
    raise
      (Eval_exact.Unsupported
         "repair-key above an approximate selection is not supported \
          (footnote 3)");
  let stats = fresh_stats () in
  let cache = Hashtbl.create 64 in
  let aconf_ord = ref 0 in
  let a =
    eval_ann ?budget ?stream ~aconf_ord ~cache ~eps0 ~max_rounds ~sigma_delta
      ~rng ~stats udb q
  in
  (result_of_ann a, stats)

(* Active-domain size: distinct values across the base relations. *)
let active_domain_size udb =
  let seen = Hashtbl.create 256 in
  List.iter
    (fun name ->
      let u = Udb.find udb name in
      List.iter
        (fun t ->
          List.iter
            (fun v -> Hashtbl.replace seen (Value.to_string v) ())
            (Tuple.to_list t))
        (Urelation.possible_tuples u))
    (Udb.names udb);
  max 2 (Hashtbl.length seen)

let eval_with_guarantee ?budget ?stream ?(eps0 = 0.05) ?(initial_rounds = 1)
    ~rng ~delta udb q =
  let k = max 1 (Ua.max_conf_width q) in
  let d = max 1 (Ua.nesting_depth q) in
  let n = active_domain_size udb in
  let l_cap = Stats.theorem_6_7_rounds ~eps0 ~delta ~k ~d ~n in
  let total = fresh_stats () in
  let accumulate stats =
    total.decisions <- total.decisions + stats.decisions;
    total.estimator_calls <- total.estimator_calls + stats.estimator_calls;
    total.round_limit_hits <- total.round_limit_hits + stats.round_limit_hits
  in
  let rec attempt ~first l sigma_delta =
    let udb' = Udb.copy udb in
    (* Only the first attempt may replay a journal from a previous process:
       later doubling attempts can see different aconf inputs (σ̂ decisions
       shift memberships), so their journals must start fresh rather than
       fail the fingerprint check. *)
    let stream =
      if first then stream
      else
        Option.map
          (fun (o : Pqdb_montecarlo.Confidence.stream_options) ->
            { o with Pqdb_montecarlo.Confidence.resume = false })
          stream
    in
    let r, stats =
      eval ?budget ?stream ~eps0 ~max_rounds:l ~sigma_delta ~rng udb' q
    in
    accumulate stats;
    Log.debug (fun m ->
        m
          "doubling driver: l=%d sigma_delta=%g max_error=%g decisions=%d            calls=%d limit_hits=%d"
          l sigma_delta (max_error r) stats.decisions stats.estimator_calls
          stats.round_limit_hits);
    (* Tuples still failing at the Theorem 6.7 budget cap are exactly the
       (suspected) singular ones the theorem exempts; before the cap, a
       round-limit hit only means the budget was small.  The per-decision
       target shrinks along with the budget doubling because per-tuple
       bounds *sum* over the provenance (Lemma 6.4): a nested query needs
       decisions tighter than the overall delta. *)
    let budget_exhausted =
      match budget with
      | Some b -> Pqdb_montecarlo.Budget.exhausted b
      | None -> false
    in
    (* An exhausted governor ends the doubling: another attempt could not
       sample anyway, and the current result already carries sound (wider)
       bounds and suspects. *)
    if max_error r <= delta || l >= l_cap || budget_exhausted then
      (r, total, l)
    else attempt ~first:false (min l_cap (2 * l)) (sigma_delta /. 2.)
  in
  attempt ~first:true (max 1 initial_rounds) delta
