open Pqdb_relational
open Pqdb_urel
module Estimator = Pqdb_montecarlo.Estimator
module Dnf = Pqdb_montecarlo.Dnf
module Compile = Pqdb_montecarlo.Compile

type result = {
  ranked : (Tuple.t * float) list;
  certified : bool;
  estimator_calls : int;
  rounds : int;
  exact_candidates : int;
  sampled : (Tuple.t * int) list;
}

type candidate = {
  tuple : Tuple.t;
  comp : Compile.t;
  ests : Estimator.t array;  (* one incremental sampler per residual *)
  mutable lo : float;
  mutable hi : float;
}

(* Candidates whose lineage compiled away entirely — or whose residuals are
   all degenerate/single-clause — are exact: their intervals are points and
   they must never be refined. *)
let is_exact_candidate c =
  Array.for_all
    (fun est ->
      Estimator.is_degenerate est || Dnf.clause_count (Estimator.dnf est) = 1)
    c.ests

(* Plug current point estimates into the compiled tree.  Residual samplers
   with no trials yet report 0, which is fine: [update_interval] still spans
   the truth, and [current_value] is only used for ordering. *)
let current_value c =
  Compile.value c.comp (Array.map Estimator.estimate c.ests)

let eps_at c ~delta_r =
  Array.fold_left
    (fun acc est -> Float.max acc (Estimator.eps_bound est ~delta:delta_r))
    0. c.ests

let update_interval ~delta_r c =
  (* The compiled tree is monotone in every residual estimate, so plugging
     per-residual interval endpoints in gives sound per-tuple endpoints;
     each residual bound holds with probability 1 − δ_r, union bound over
     the r residuals gives 1 − δ_t per tuple. *)
  let intervals = Array.map (Estimator.interval ~delta:delta_r) c.ests in
  c.lo <- Float.max 0. (Compile.value c.comp (Array.map fst intervals));
  c.hi <- Float.min 1. (Compile.value c.comp (Array.map snd intervals))

let run ?budget ?(eps0 = 0.01) ?max_rounds ?compile_fuel ~rng ~delta ~k
    candidates =
  if k <= 0 then invalid_arg "Topk.run: k must be positive";
  if candidates = [] then invalid_arg "Topk.run: no candidates";
  let compiled =
    Array.of_list
      (List.map
         (fun (tuple, dnf) ->
           let comp =
             Compile.compile ?fuel:compile_fuel (Dnf.wtable dnf)
               (Dnf.clauses dnf)
           in
           let lo, hi =
             match Compile.exact_value comp with
             | Some p -> (p, p)
             | None -> Compile.vacuous_interval comp
           in
           (tuple, comp, lo, hi))
         candidates)
  in
  let n = Array.length compiled in
  let delta_t = delta /. float_of_int n in
  let k = min k n in
  let exact_candidates =
    Array.fold_left
      (fun acc (_, comp, _, _) ->
        if Compile.is_exact comp then acc + 1 else acc)
      0 compiled
  in
  (* A-priori prescreen: with θ the k-th largest compiled lower bound, a
     candidate whose upper bound sits strictly below θ can never enter the
     top k (k candidates are certified above it before any sampling), so it
     never gets samplers at all — clear losers cost compilation only.  The
     pruned ceiling [floor_hi] stays in the certification and contested-band
     arithmetic below, keeping the certificate sound: selected candidates
     must still be separated from the best pruned candidate. *)
  let floor_hi = ref 0. in
  let keep =
    if n <= k then Array.map (fun _ -> true) compiled
    else begin
      let los = Array.map (fun (_, _, lo, _) -> lo) compiled in
      Array.sort (fun a b -> compare b a) los;
      let theta = los.(k - 1) in
      Array.map
        (fun (_, _, _, hi) ->
          if hi < theta then begin
            floor_hi := Float.max !floor_hi hi;
            false
          end
          else true)
        compiled
    end
  in
  let cands =
    Array.of_list
      (List.filter_map
         (fun i ->
           if keep.(i) then begin
             let tuple, comp, lo, hi = compiled.(i) in
             let ests = Array.map Estimator.create (Compile.residuals comp) in
             Some { tuple; comp; ests; lo; hi }
           end
           else None)
         (List.init n Fun.id))
  in
  let floor_hi = !floor_hi in
  (* The k candidates defining θ all survive (their hi ≥ lo ≥ θ), so the
     kept pool never shrinks below k. *)
  let n = Array.length cands in
  let rounds = ref 0 in
  let delta_r c =
    delta_t /. float_of_int (max 1 (Array.length c.ests))
  in
  let rec loop () =
    Array.iter (fun c -> update_interval ~delta_r:(delta_r c) c) cands;
    (* Order by estimate; the k-th and (k+1)-th define the boundary. *)
    let order = Array.copy cands in
    Array.sort (fun a b -> compare (current_value b) (current_value a)) order;
    begin
      (* [rejected] may be empty (k = n after pruning): the certificate is
         then separation from the best pruned candidate, [floor_hi]. *)
      let selected = Array.sub order 0 k in
      let rejected = Array.sub order k (n - k) in
      let min_selected_lo =
        Array.fold_left (fun acc c -> Float.min acc c.lo) 1. selected
      in
      let max_rejected_hi =
        Array.fold_left (fun acc c -> Float.max acc c.hi) 0. rejected
        |> Float.max floor_hi
      in
      if min_selected_lo >= max_rejected_hi then (order, true)
      else begin
        (* Refine only the candidates whose interval crosses the contested
           band. *)
        let contested c = c.hi >= min_selected_lo && c.lo <= max_rejected_hi in
        let refinable =
          Array.to_list cands
          |> List.filter (fun c ->
                 contested c
                 && (not (is_exact_candidate c))
                 && eps_at c ~delta_r:(delta_r c) > eps0)
        in
        let out_of_budget =
          match budget with
          | Some b -> Pqdb_montecarlo.Budget.exhausted b
          | None -> false
        in
        match refinable with
        | [] -> (order, false) (* ties at the eps0 floor: uncertified *)
        | _ when out_of_budget ->
            (* Anytime exit: the current ranking with its (sound) intervals,
               explicitly uncertified. *)
            (order, false)
        | _ ->
            let before =
              match budget with
              | None -> 0
              | Some _ ->
                  Array.fold_left
                    (fun acc c ->
                      Array.fold_left
                        (fun acc est -> acc + Estimator.trials est)
                        acc c.ests)
                    0 cands
            in
            List.iter
              (fun c ->
                Array.iter
                  (fun est -> Estimator.step_round rng est)
                  c.ests)
              refinable;
            (match budget with
            | None -> ()
            | Some b ->
                let after =
                  Array.fold_left
                    (fun acc c ->
                      Array.fold_left
                        (fun acc est -> acc + Estimator.trials est)
                        acc c.ests)
                    0 cands
                in
                Pqdb_montecarlo.Budget.spend b (after - before));
            incr rounds;
            (match max_rounds with
            | Some limit when !rounds >= limit -> (order, false)
            | _ -> loop ())
      end
    end
  in
  let order, certified = loop () in
  let candidate_trials c =
    Array.fold_left (fun acc est -> acc + Estimator.trials est) 0 c.ests
  in
  let calls =
    Array.fold_left (fun acc c -> acc + candidate_trials c) 0 cands
  in
  {
    ranked =
      List.map
        (fun c -> (c.tuple, current_value c))
        (Array.to_list (Array.sub order 0 k));
    certified;
    estimator_calls = calls;
    rounds = !rounds;
    exact_candidates;
    sampled =
      Array.to_list cands
      |> List.filter_map (fun c ->
             let t = candidate_trials c in
             if t > 0 then Some (c.tuple, t) else None);
  }

let query ?budget ?eps0 ?max_rounds ?compile_fuel ~rng ~delta ~k udb q =
  let u = Eval_exact.eval udb q in
  let w = Udb.wtable udb in
  let candidates =
    List.map
      (fun t -> (t, Dnf.prepare w (Urelation.clauses_for u t)))
      (Urelation.possible_tuples u)
  in
  run ?budget ?eps0 ?max_rounds ?compile_fuel ~rng ~delta ~k candidates
