(** Approximate UA evaluation (Section 6): Karp-Luby confidence, Figure-3
    approximate selection, and per-tuple error bounds in the style of
    Lemma 6.4, with the Theorem 6.7 doubling driver on top.

    Each result tuple carries an accumulated error bound [μ]:
    - base tuples are reliable ([μ = 0]);
    - relational operators sum the bounds of the provenance tuples
      (Lemma 6.4(1));
    - σ̂ adds the Figure-3 decision bound [min(0.5, Σᵢ δᵢ(ε))] to the input
      contribution (Lemma 6.4(2));
    - [conf_{ε,δ}] adds its [δ] (the probability its [P] value is outside the
      ε-relative interval).

    Tuples whose σ̂ decision hit the round budget before reaching its target
    are flagged as {e singularity suspects} — they are exactly the tuples
    Theorem 6.7 cannot (and provably need not) guarantee. *)

open Pqdb_numeric
open Pqdb_relational
open Pqdb_urel

type stats = {
  mutable decisions : int;  (** σ̂ tuple decisions made *)
  mutable estimator_calls : int;  (** total Karp-Luby estimator calls *)
  mutable round_limit_hits : int;  (** decisions stopped by the budget *)
}

type result = {
  urel : Urelation.t;
  errors : (Tuple.t * float) list;
      (** per possible data tuple: accumulated error bound μ *)
  suspects : Tuple.t list;
      (** tuples whose provenance contains a budget-limited (suspected
          singular) σ̂ decision *)
  unreliable : bool;
      (** true iff an approximate operator contributed to the result *)
}

val max_error : result -> float
val error_of : result -> Tuple.t -> float

val eval :
  ?budget:Pqdb_montecarlo.Budget.t ->
  ?stream:Pqdb_montecarlo.Confidence.stream_options ->
  ?eps0:float ->
  ?max_rounds:int ->
  ?sigma_delta:float ->
  rng:Rng.t ->
  Udb.t ->
  Pqdb_ast.Ua.t ->
  result * stats
(** One evaluation pass.  [sigma_delta] (default 0.05) is the per-decision
    target handed to Figure 3; [max_rounds] is the per-decision round budget
    [l] of Theorem 6.7 (default: unlimited, i.e. run Figure 3 to its stopping
    condition).  Mutates the W table via [repair-key] — evaluate on
    {!Pqdb_urel.Udb.copy} when the database must survive.

    [budget] makes the pass anytime: [conf_{ε,δ}] batches and σ̂ decisions
    charge the shared governor and degrade on exhaustion — estimates stay
    sound but tuples that missed their (ε, δ) contract are reported as
    {!result.suspects} (σ̂ decisions additionally count as
    [round_limit_hits]).

    [conf_{ε,δ}] batches always run through the streaming shard engine
    ({!Pqdb_montecarlo.Confidence.run_stream}); [stream] overrides its
    options — shard ceiling, retry budget, and crash-recovery journal.  A
    query with several [aconf] nodes journals the first at the given path
    and later ones at deterministic [.aconf<k>] suffixes, so [resume] pairs
    each node with its own journal.
    @raise Eval_exact.Unsupported as the exact evaluator, and additionally
    when [repair-key] sits above a σ̂ (footnote 3 of the paper). *)

val eval_with_guarantee :
  ?budget:Pqdb_montecarlo.Budget.t ->
  ?stream:Pqdb_montecarlo.Confidence.stream_options ->
  ?eps0:float ->
  ?initial_rounds:int ->
  rng:Rng.t ->
  delta:float ->
  Udb.t ->
  Pqdb_ast.Ua.t ->
  result * stats * int
(** The Theorem 6.7 driver: evaluate with round budget [l] (starting at
    [initial_rounds], default 1), and while some tuple's error exceeds
    [delta], double [l] — tightening the per-decision target along with it,
    since bounds sum over provenance — and re-evaluate on a fresh copy of the
    database.  Stops unconditionally once [l] reaches the
    [Stats.theorem_6_7_rounds] bound, so singular tuples cannot loop it
    forever.  Returns the final result, cumulative stats and the final [l].

    Each attempt runs on a fresh {!Pqdb_urel.Udb.copy}, so repair-key
    variables created during evaluation live in that copy's W table; use the
    driver for queries whose result is complete (σ̂ or [conf] on top — the
    intended use), where result rows carry no conditions.

    With a [budget], the doubling also stops (with the current, degraded
    result) once the governor is exhausted.

    [stream] is threaded to every attempt's [conf] batches as in {!eval},
    except that only the first attempt honours [resume] — later doubling
    attempts can present different batches to the same node, so they start
    their journals fresh instead of failing the fingerprint check. *)
