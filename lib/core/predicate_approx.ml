open Pqdb_montecarlo
module Apred = Pqdb_ast.Apred

type decision = {
  value : bool;
  error_bound : float;
  epsilon : float;
  rounds : int;
  estimator_calls : int;
  estimates : float array;
  hit_round_limit : bool;
  used_floor : bool;
}

let check_args ~delta ~eps0 phi estimators =
  if delta <= 0. then invalid_arg "Predicate_approx: delta must be positive";
  if eps0 <= 0. || eps0 >= 1. then
    invalid_arg "Predicate_approx: eps0 must be in (0, 1)";
  if Apred.arity phi > Array.length estimators then
    invalid_arg "Predicate_approx: not enough estimators for the predicate"

(* Combined error bound over the k values: the Figure-3 sum, or the tighter
   1 - prod(1 - delta_i) of Lemma 5.1's independence remark (Karp-Luby runs
   for different values are independent). *)
let combined_error ~independent estimators ~eps =
  if independent then
    Pqdb_numeric.Stats.independent_or_bound
      (Array.to_list
         (Array.map (fun est -> Estimator.delta_bound est ~eps) estimators))
  else
    Array.fold_left
      (fun acc est -> acc +. Estimator.delta_bound est ~eps)
      0. estimators

let finish ~independent ~value ~eps ~eps_phi ~eps0 ~rounds ~hit_round_limit
    estimators =
  {
    value;
    error_bound = Float.min 0.5 (combined_error ~independent estimators ~eps);
    epsilon = eps;
    rounds;
    estimator_calls =
      Array.fold_left (fun acc est -> acc + Estimator.trials est) 0 estimators;
    estimates = Array.map Estimator.estimate estimators;
    hit_round_limit;
    used_floor = eps_phi < eps0;
  }

let decide ?budget ?(eps0 = 0.05) ?max_rounds ?(search_iterations = 40) ?batch
    ?(independent = false) ~rng ~delta phi estimators =
  check_args ~delta ~eps0 phi estimators;
  let total_trials () =
    Array.fold_left (fun acc est -> acc + Estimator.trials est) 0 estimators
  in
  let step est =
    match batch with
    | None -> Estimator.step_round rng est (* |F_i| calls, as in Figure 3 *)
    | Some n -> Estimator.batch rng est n
  in
  let out_of_budget () =
    match budget with
    | Some b -> Pqdb_montecarlo.Budget.exhausted b
    | None -> false
  in
  let rec loop rounds =
    if out_of_budget () then begin
      (* Deadline degradation: decide with whatever the accumulated trials
         say and report the error bound actually achieved, reusing the
         round-limit machinery (callers treat these tuples as suspects). *)
      let p_hat = Array.map Estimator.estimate estimators in
      let eps_phi = Epsilon.epsilon ~search_iterations phi p_hat in
      let eps = Float.max eps0 eps_phi in
      finish ~independent
        ~value:(Apred.eval p_hat phi)
        ~eps ~eps_phi ~eps0 ~rounds ~hit_round_limit:true estimators
    end
    else begin
      let before = total_trials () in
      Array.iter step estimators;
      (match budget with
      | Some b -> Pqdb_montecarlo.Budget.spend b (total_trials () - before)
      | None -> ());
      let rounds = rounds + 1 in
      let p_hat = Array.map Estimator.estimate estimators in
      (* ε := max(ε₀, ε_ψ(p̂)) with ψ = φ or ¬φ as evaluated at p̂; the
         truth-directed ε computation covers both cases. *)
      let eps_phi = Epsilon.epsilon ~search_iterations phi p_hat in
      let eps = Float.max eps0 eps_phi in
      if combined_error ~independent estimators ~eps <= delta then
        finish ~independent
          ~value:(Apred.eval p_hat phi)
          ~eps ~eps_phi ~eps0 ~rounds ~hit_round_limit:false estimators
      else begin
        match max_rounds with
        | Some limit when rounds >= limit ->
            finish ~independent
              ~value:(Apred.eval p_hat phi)
              ~eps ~eps_phi ~eps0 ~rounds ~hit_round_limit:true estimators
        | _ -> loop rounds
      end
    end
  in
  (* Degenerate case: every estimator already exact (trivial DNFs). *)
  if Array.for_all Estimator.is_degenerate estimators then begin
    let p_hat = Array.map Estimator.estimate estimators in
    (* Degenerate estimators are exact: no floor reliance. *)
    finish ~independent
      ~value:(Apred.eval p_hat phi)
      ~eps:eps0 ~eps_phi:Linear_eps.eps_max ~eps0 ~rounds:0
      ~hit_round_limit:false estimators
  end
  else loop 0

let decide_naive ?(eps0 = 0.05) ~rng ~delta phi estimators =
  check_args ~delta ~eps0 phi estimators;
  let k = max 1 (Array.length estimators) in
  let per_value_delta = delta /. float_of_int k in
  Array.iter
    (fun est ->
      let missing = Estimator.trials_to_reach est ~eps:eps0 ~delta:per_value_delta in
      Estimator.batch rng est missing)
    estimators;
  let p_hat = Array.map Estimator.estimate estimators in
  let eps_phi =
    if Array.for_all Estimator.is_degenerate estimators then
      Linear_eps.eps_max
    else Epsilon.epsilon phi p_hat
  in
  finish ~independent:false
    ~value:(Apred.eval p_hat phi)
    ~eps:eps0 ~eps_phi ~eps0 ~rounds:1 ~hit_round_limit:false estimators

(* Generic variant over abstract approximable values (Section 5's claimed
   generality): same loop as Figure 3, but refinement and delta bounds come
   from the Approximable interface, so tuple confidences and online
   aggregates mix freely in one predicate. *)
let decide_values ?(eps0 = 0.05) ?max_rounds ?(search_iterations = 40)
    ?(independent = false) ~rng ~delta phi values =
  if delta <= 0. then invalid_arg "Predicate_approx: delta must be positive";
  if eps0 <= 0. || eps0 >= 1. then
    invalid_arg "Predicate_approx: eps0 must be in (0, 1)";
  if Apred.arity phi > Array.length values then
    invalid_arg "Predicate_approx: not enough approximable values";
  let combined ~eps =
    if independent then
      Pqdb_numeric.Stats.independent_or_bound
        (Array.to_list
           (Array.map (fun v -> Approximable.delta_bound v ~eps) values))
    else
      Array.fold_left
        (fun acc v -> acc +. Approximable.delta_bound v ~eps)
        0. values
  in
  let finish ~value ~eps ~eps_phi ~rounds ~hit_round_limit =
    {
      value;
      error_bound = Float.min 0.5 (combined ~eps);
      epsilon = eps;
      rounds;
      estimator_calls =
        Array.fold_left (fun acc v -> acc + Approximable.steps v) 0 values;
      estimates = Array.map Approximable.estimate values;
      hit_round_limit;
      used_floor = eps_phi < eps0;
    }
  in
  if Array.for_all Approximable.is_exact values then begin
    let p_hat = Array.map Approximable.estimate values in
    finish
      ~value:(Apred.eval p_hat phi)
      ~eps:eps0 ~eps_phi:Linear_eps.eps_max ~rounds:0 ~hit_round_limit:false
  end
  else begin
    let rec loop rounds =
      Array.iter (fun v -> Approximable.refine rng v) values;
      let rounds = rounds + 1 in
      let p_hat = Array.map Approximable.estimate values in
      let eps_phi = Epsilon.epsilon ~search_iterations phi p_hat in
      let eps = Float.max eps0 eps_phi in
      if combined ~eps <= delta then
        finish
          ~value:(Apred.eval p_hat phi)
          ~eps ~eps_phi ~rounds ~hit_round_limit:false
      else begin
        match max_rounds with
        | Some limit when rounds >= limit ->
            finish
              ~value:(Apred.eval p_hat phi)
              ~eps ~eps_phi ~rounds ~hit_round_limit:true
        | _ -> loop rounds
      end
    in
    loop 0
  end
