(** Top-k tuples by confidence via multisimulation on compiled lineage.

    The paper's introduction cites Ré, Dalvi and Suciu's top-k evaluation on
    probabilistic data [16] as one of the approximation lines it
    generalizes.  This module implements the interval-pruning idea on top of
    the lineage compiler: every candidate's DNF is compiled first
    ({!Pqdb_montecarlo.Compile}), so fully-decomposable tuples enter the race
    with point intervals and zero sampling cost, and only the irreducible
    residues carry incremental Karp-Luby samplers.  Per-residual Chernoff
    intervals are pushed through the (monotone) compiled tree to get each
    candidate's confidence interval; only candidates whose intervals straddle
    the k-th boundary are refined further, so clearly-in and clearly-out
    tuples stop sampling early.

    Before any sampler is even allocated, an {e a-priori prescreen} on the
    compiled brackets drops clear losers: with θ the k-th largest compiled
    lower bound, a candidate whose compiled upper bound lies strictly below
    θ can never rank and is pruned for the cost of compilation alone — on
    skewed workloads most of the field never materializes estimators, which
    bounds the race's resident memory the same way streaming bounds the
    batch engine's.  The best pruned upper bound stays in the certification
    arithmetic, so [certified] still means what it says.

    Like predicate approximation, ranking has singularities: ties at the
    boundary cannot be separated, so refinement stops at the relative floor
    [eps0] and the result is flagged uncertified. *)

open Pqdb_numeric
open Pqdb_relational
open Pqdb_urel

type result = {
  ranked : (Tuple.t * float) list;
      (** the top-k tuples with their final estimates, best first *)
  certified : bool;
      (** true when every selected tuple's lower bound clears every rejected
          tuple's upper bound (each bound valid with probability
          [1 − delta/n]) *)
  estimator_calls : int;
  rounds : int;
  exact_candidates : int;
      (** candidates whose lineage compiled to a closed form (no residuals) *)
  sampled : (Tuple.t * int) list;
      (** every candidate that spent estimator calls, with its trial count *)
}

val run :
  ?budget:Pqdb_montecarlo.Budget.t ->
  ?eps0:float ->
  ?max_rounds:int ->
  ?compile_fuel:int ->
  rng:Rng.t ->
  delta:float ->
  k:int ->
  (Tuple.t * Pqdb_montecarlo.Dnf.t) list ->
  result
(** Rank the candidates and return the [k] most probable.  Each candidate's
    clause set is compiled with [compile_fuel] (default
    {!Pqdb_montecarlo.Compile.default_fuel}; [~compile_fuel:0] recovers
    pure-sampling multisimulation).  [delta] is split evenly across
    candidates, then across each candidate's residuals, for the per-tuple
    interval bounds.  [budget] makes the ranking anytime: refinement rounds
    charge the shared governor, and on exhaustion the current order is
    returned with [certified = false] (its interval bounds remain sound).
    @raise Invalid_argument when [k <= 0] or there are no candidates. *)

val query :
  ?budget:Pqdb_montecarlo.Budget.t ->
  ?eps0:float ->
  ?max_rounds:int ->
  ?compile_fuel:int ->
  rng:Rng.t ->
  delta:float ->
  k:int ->
  Udb.t ->
  Pqdb_ast.Ua.t ->
  result
(** Convenience: evaluate the (positive) query exactly on the representation
    level, then rank its possible tuples by confidence.  Mutates the W table
    like {!Eval_exact.eval}. *)
