(** Closed-form error bounds for whole-query approximation
    (Proposition 6.6 / Theorem 6.7).

    With σ̂ nesting depth [d], maximum conf-argument width / arity [k],
    active-domain size [n], round budget [l] and floor [ε₀], a tuple without
    singularities in its provenance errs with probability at most
    [k·d·n^(k·d)·δ′(ε₀, l)], where [δ′(ε, l) = 2·exp(−l·ε²/3)]. *)

val proposition_6_6 :
  k:int -> d:int -> n:int -> eps0:float -> rounds:int -> float
(** The bound above (capped at 1). *)

val recurrence : k:int -> n:int -> d:int -> per_level:float -> float
(** The solved recurrence [μ_d = k·x + n^k·μ_{d-1}] with [μ_0 = 0] and
    [x = per_level]: [k·x·Σ_{i<d} n^(k·i)] (capped at 1).  Exposed so tests
    can confirm {!proposition_6_6} dominates it. *)

val rounds_for_guarantee :
  k:int -> d:int -> n:int -> eps0:float -> delta:float -> int
(** Least [l] making {!proposition_6_6} at most [delta] — the [l₀] of
    Theorem 6.7 (alias of {!Pqdb_numeric.Stats.theorem_6_7_rounds}). *)

(** {1 Composition of relative-error guarantees}

    Used by the conditioning layer: the Theorem 4.4 difference
    [Pr(φ) − Pr(φ ∧ ¬ψ)] and the renormalization ratio
    [Pr(q ∧ c) / Pr(c)] each combine two (ε, δ) estimates, and neither
    preserves the inputs' relative ε — these rules make the honest, widened
    certificate explicit.  (The failure budgets add: each result holds with
    probability ≥ 1 − δ_p − δ_q by the union bound.) *)

val difference_eps : p:float -> eps_p:float -> q:float -> eps_q:float -> float
(** The relative error certified for [p − q] by relative-[eps_p] and
    relative-[eps_q] estimates of [p ≥ q ≥ 0]:
    [(εp·p + εq·q)/(p − q)], and [infinity] when [p <= q] (the difference
    cannot be bounded away from zero).  Strictly wider than
    [max eps_p eps_q] whenever [q > 0] — copying the input ε would be
    unsound.  @raise Invalid_argument on negative inputs. *)

val ratio_eps : eps_num:float -> eps_den:float -> float
(** The relative error certified for a ratio of an [eps_num]- and an
    [eps_den]-relative estimate: [(εn + εd)/(1 − εd)] ([infinity] when
    [eps_den >= 1]).  Exceeds [max eps_num eps_den] whenever both are
    positive.  @raise Invalid_argument on negative inputs. *)
