open Pqdb_numeric

let proposition_6_6 ~k ~d ~n ~eps0 ~rounds =
  let kf = float_of_int k and df = float_of_int d and nf = float_of_int n in
  let log_bound =
    log kf +. log df
    +. (kf *. df *. log nf)
    +. log (Stats.delta' ~eps:eps0 ~rounds)
  in
  Float.min 1. (exp log_bound)

let recurrence ~k ~n ~d ~per_level =
  let nk = float_of_int n ** float_of_int k in
  let rec go acc power i =
    if i >= d then acc else go (acc +. power) (power *. nk) (i + 1)
  in
  Float.min 1. (float_of_int k *. per_level *. go 0. 1. 0)

let rounds_for_guarantee ~k ~d ~n ~eps0 ~delta =
  Stats.theorem_6_7_rounds ~eps0 ~delta ~k ~d ~n

(* Relative error is NOT preserved by subtraction: p̂ ∈ [(1−εp)p, (1+εp)p]
   and q̂ ∈ [(1−εq)q, (1+εq)q] only bound p̂ − q̂ within an absolute
   εp·p + εq·q of p − q, which relative to the difference is
   (εp·p + εq·q)/(p − q) — arbitrarily worse than max(εp, εq) as q → p.
   The Theorem 4.4 egd rewriting Pr(φ ∧ ψ) = Pr(φ) − Pr(φ ∧ ¬ψ) must
   therefore *widen* its reported ε, never copy it. *)
let difference_eps ~p ~eps_p ~q ~eps_q =
  if not (p >= 0. && q >= 0. && eps_p >= 0. && eps_q >= 0.) then
    invalid_arg "Error_bound.difference_eps";
  let diff = p -. q in
  if diff <= 0. then Float.infinity
  else ((eps_p *. p) +. (eps_q *. q)) /. diff

(* A ratio keeps relative form but compounds: the worst quotient of the two
   brackets is (1+εn)/(1−εd) times the truth, i.e. a relative error of
   (εn + εd)/(1 − εd) — again strictly wider than max(εn, εd) whenever both
   are positive. *)
let ratio_eps ~eps_num ~eps_den =
  if not (eps_num >= 0. && eps_den >= 0.) then
    invalid_arg "Error_bound.ratio_eps";
  if eps_den >= 1. then Float.infinity
  else (eps_num +. eps_den) /. (1. -. eps_den)
