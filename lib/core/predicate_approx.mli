(** The predicate-approximation algorithm of Figure 3 (Theorem 5.8).

    Given DNFs [F₁, …, Fₖ] (one per approximable value), a floor [ε₀ > 0]
    and a target error [δ], the algorithm interleaves rounds of [|Fᵢ|]
    Karp-Luby estimator calls per value with re-computation of
    [ε = max(ε₀, ε_ψ(p̂₁, …, p̂ₖ))] (where ψ is [φ] or [¬φ] according to the
    current estimates), stopping as soon as [Σᵢ δᵢ(ε) ≤ δ].  Away from
    ε₀-singularities the returned truth value is wrong with probability at
    most δ; the naive alternative always pays the full [ε₀] sample budget
    (the measured speedup is experiment E7). *)

open Pqdb_numeric
open Pqdb_montecarlo

type decision = {
  value : bool;  (** [φ(p̂₁, …, p̂ₖ)] at termination *)
  error_bound : float;  (** [min(0.5, Σᵢ δᵢ(ε))] at termination *)
  epsilon : float;  (** the final [ε] *)
  rounds : int;  (** outer-loop iterations executed *)
  estimator_calls : int;  (** total Karp-Luby estimator invocations *)
  estimates : float array;  (** final [p̂ᵢ] *)
  hit_round_limit : bool;
      (** true when [max_rounds] stopped the loop before the bound was met *)
  used_floor : bool;
      (** true when the final round's [ε_ψ(p̂)] was below [ε₀], i.e. the
          stopping condition was met only thanks to the ε₀ floor: by
          Theorem 5.8 the reported bound is then valid {e only if} the true
          point is not an ε₀-singularity — the singularity-suspicion signal
          used by query evaluation *)
}

val decide :
  ?budget:Pqdb_montecarlo.Budget.t ->
  ?eps0:float ->
  ?max_rounds:int ->
  ?search_iterations:int ->
  ?batch:int ->
  ?independent:bool ->
  rng:Rng.t ->
  delta:float ->
  Pqdb_ast.Apred.t ->
  Estimator.t array ->
  decision
(** Run Figure 3.  [eps0] defaults to 0.05; [max_rounds] (default: no limit)
    caps the outer loop for use by the Theorem 6.7 doubling driver, reporting
    the error bound achieved so far.  [batch] overrides the per-round
    estimator-call count (the paper batches [|Fᵢ|] calls per value per round;
    experiment E14 ablates this).  [independent] (default false, matching
    Figure 3's [Σᵢ δᵢ(ε)]) switches the combined bound to the tighter
    [1 − Πᵢ(1 − δᵢ(ε))] that Lemma 5.1's remark justifies for independent
    Karp-Luby runs.  The estimators keep their accumulated
    trials, so successive calls refine rather than restart.  [budget]
    (default: none) makes the decision anytime: every round charges the
    shared {!Pqdb_montecarlo.Budget} and, once it is exhausted, the decision
    is made with the trials accumulated so far and flagged
    [hit_round_limit = true], so callers treat it as a suspect.
    @raise Invalid_argument when [delta <= 0], [eps0 <= 0], or the predicate
    mentions more variables than there are estimators. *)

val decide_values :
  ?eps0:float ->
  ?max_rounds:int ->
  ?search_iterations:int ->
  ?independent:bool ->
  rng:Rng.t ->
  delta:float ->
  Pqdb_ast.Apred.t ->
  Approximable.t array ->
  decision
(** Figure 3 over abstract {!Approximable} values — the generalization the
    end of Section 5 claims ("…may conceivably extend to areas such as
    online aggregation"): any (ε, δ)-refinable value can feed the predicate,
    e.g. sampled aggregates alongside tuple confidences. *)

val decide_naive :
  ?eps0:float ->
  rng:Rng.t ->
  delta:float ->
  Pqdb_ast.Apred.t ->
  Estimator.t array ->
  decision
(** The baseline sketched before Theorem 5.8: sample every value to the full
    (ε₀, δ/k) budget up front, then evaluate the predicate once.  Used by the
    E7 benchmark as the comparison point. *)
