(* Shared dial/backoff policy for every socket client in the tree: the
   serve-layer Client, the coordinator's TCP worker transport, and the
   coordinator's redial loop all back off through this one module, so a
   fleet of reconnecting peers shares one (salted) jitter law instead of
   each layer growing its own. *)

(* On Unix an abstract [Unix.file_descr] is the integer fd; the standard
   trick recovers it so a connection attempt can salt its jitter.  Only
   used for mixing, never round-tripped back into a descriptor. *)
let fd_int (fd : Unix.file_descr) : int = Obj.magic fd

(* Capped exponential backoff with deterministic jitter: attempt [k] waits
   [retry_delay_s * 2^k], capped at [max_delay_s], scaled into [0.5, 1.0)
   by a Weyl-sequence fraction of (salt ⊕ attempt) — no RNG state, so two
   runs of the same script back off identically, while distinct
   connections (distinct pids/fds) spread out instead of thundering in
   lockstep.  [salt = 0] reproduces the historical attempt-only jitter. *)
let backoff_delay_s ?(salt = 0) ~retry_delay_s ~max_delay_s k =
  let base = retry_delay_s *. (2. ** float_of_int (min k 20)) in
  let capped = Float.min base max_delay_s in
  let phi = 0.61803398874989479 in
  let mix = (salt lxor (salt lsr 7) lxor (salt lsr 16)) land 0xFFFF in
  let frac = Float.rem (phi *. float_of_int (k + 1 + mix)) 1. in
  capped *. (0.5 +. (0.5 *. frac))

(* The salt the satellite spec names: pid ⊕ fd ⊕ attempt.  The attempt
   index already walks the Weyl sequence, so the salt proper mixes the
   per-process and per-socket parts. *)
let connection_salt fd = Unix.getpid () lxor fd_int fd

let retriable = function
  | Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN | Unix.ECONNRESET
  | Unix.ETIMEDOUT | Unix.EHOSTUNREACH | Unix.ENETUNREACH | Unix.EINTR ->
      true
  | _ -> false

(* Dial [addr], retrying refused/absent/unreachable peers with capped
   jittered backoff.  Returns the connected descriptor (close-on-exec). *)
let connect ?(retries = 0) ?(retry_delay_s = 0.2) ?(max_delay_s = 2.0) addr =
  let domain = Unix.domain_of_sockaddr addr in
  let rec attempt k =
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> fd
    | exception Unix.Unix_error (e, _, _) when retriable e && retries - k > 0
      ->
        let salt = connection_salt fd in
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf (backoff_delay_s ~salt ~retry_delay_s ~max_delay_s k);
        attempt (k + 1)
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  attempt 0
