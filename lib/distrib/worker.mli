(** The worker half of distributed shard execution.

    A worker is handed the {e same} inputs as the coordinator — batch seed,
    W table, clause sets, (ε, δ), compilation fuel, shard ceiling — and
    reconstructs the shard plan and the whole-batch per-tuple RNG lanes
    locally.  Orders then only carry a shard index, a data fingerprint and a
    budget slice; by the {!Pqdb_montecarlo.Confidence.solve_shard} contract
    the outcome a worker sends back is bit-identical to the one the
    in-process stream would have computed for that shard, which is what lets
    the coordinator mix workers, retries and in-process fallback freely.

    Parameter or seed drift is caught twice: the [Hello] handshake carries
    the run's {!Pqdb_montecarlo.Shard.meta_payload} and an RNG probe for the
    coordinator to compare literally, and each order's fingerprint is
    re-derived from the worker's own data before solving (mismatch answers
    [Failed], never a wrong shard). *)

open Pqdb_numeric
open Pqdb_urel

val probe_of : Rng.t -> string
(** The handshake RNG probe: a ["%h"] draw from a {e copy} of the batch
    seed, so computing it does not advance the caller's generator.  The
    coordinator and every worker derive it from their own seed; literal
    equality certifies the seeds (and thus all per-tuple lanes) agree. *)

val budget_of_slice :
  trials:int option -> deadline_s:float option ->
  Pqdb_montecarlo.Budget.t option
(** The budget a worker reconstructs from an order's slice: [None] for the
    unlimited (bit-identical) path, a fresh trial/deadline budget
    otherwise.  A zero-trial or spent-deadline slice yields a born-cancelled
    budget — the solve degrades to sound brackets immediately, like a dead
    {!Pqdb_montecarlo.Budget.split} child.  The coordinator's in-process
    fallback uses the same mapping so a shard's slice means the same thing
    wherever it runs. *)

val serve :
  ?compile_fuel:int -> ?nworkers:int -> ?shard_cost:int ->
  ?heartbeat_s:float -> ?frame_timeout_s:float ->
  Rng.t -> Wtable.t -> Assignment.t list array ->
  eps:float -> delta:float -> input:in_channel -> output:out_channel -> unit
(** Run the worker loop: send [Hello], then answer [Order]s with [Outcome]
    (or [Failed] — a failed shard does not kill the worker; the coordinator
    decides between reassignment and quarantine) until [Shutdown] or EOF on
    [input].  A heartbeat thread ticks every [heartbeat_s] (default 0.25 s)
    the whole time, including during long solves.  [shard_cost] must match
    the coordinator's ({!Pqdb_montecarlo.Confidence.stream_options}
    default); [nworkers] sizes this worker's own domain pool.  SIGPIPE is
    ignored so a vanished coordinator surfaces as an I/O error, not a
    process kill.

    Orders are read with {!Protocol.read_fd_frame}: the idle wait between
    frames is unbounded, but once a frame starts its remainder must arrive
    within [frame_timeout_s] (default 30 s) — a coordinator that tears a
    frame mid-write cannot leave the worker wedged-but-heartbeating.
    [input] must therefore carry no channel-buffered read-ahead; read any
    greeting off its fd ({!Protocol.read_fd_frame}), not through the
    channel.
    @raise Invalid_argument on bad (ε, δ), [shard_cost] or
    [frame_timeout_s].  I/O errors on a dead peer propagate — the CLI
    turns them into a nonzero exit. *)
