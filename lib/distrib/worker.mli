(** The worker half of distributed shard execution.

    A worker is handed the {e same} inputs as the coordinator — batch seed,
    W table, clause sets, (ε, δ), compilation fuel, shard ceiling — and
    reconstructs the shard plan and the whole-batch per-tuple RNG lanes
    locally.  Orders then only carry a shard index, a data fingerprint and a
    budget slice; by the {!Pqdb_montecarlo.Confidence.solve_shard} contract
    the outcome a worker sends back is bit-identical to the one the
    in-process stream would have computed for that shard, which is what lets
    the coordinator mix workers, retries and in-process fallback freely.

    Parameter or seed drift is caught twice: the [Hello] handshake carries
    the run's {!Pqdb_montecarlo.Shard.meta_payload} and an RNG probe for the
    coordinator to compare literally, and each order's fingerprint is
    re-derived from the worker's own data before solving (mismatch answers
    [Failed], never a wrong shard). *)

open Pqdb_numeric
open Pqdb_urel

val probe_of : Rng.t -> string
(** The handshake RNG probe: a ["%h"] draw from a {e copy} of the batch
    seed, so computing it does not advance the caller's generator.  The
    coordinator and every worker derive it from their own seed; literal
    equality certifies the seeds (and thus all per-tuple lanes) agree. *)

val budget_of_slice :
  trials:int option -> deadline_s:float option ->
  Pqdb_montecarlo.Budget.t option
(** The budget a worker reconstructs from an order's slice: [None] for the
    unlimited (bit-identical) path, a fresh trial/deadline budget
    otherwise.  A zero-trial or spent-deadline slice yields a born-cancelled
    budget — the solve degrades to sound brackets immediately, like a dead
    {!Pqdb_montecarlo.Budget.split} child.  The coordinator's in-process
    fallback uses the same mapping so a shard's slice means the same thing
    wherever it runs. *)

val serve_session :
  ?compile_fuel:int -> ?nworkers:int -> ?shard_cost:int ->
  ?heartbeat_s:float -> ?frame_timeout_s:float -> ?tcp:bool ->
  Rng.t -> Wtable.t -> Assignment.t list array ->
  eps:float -> delta:float ->
  in_fd:Unix.file_descr -> out_fd:Unix.file_descr -> unit -> unit
(** Run one coordinator session over raw fds ([in_fd] = [out_fd] for a
    socket): send [Hello], then answer [Order]s with [Outcome] (or
    [Failed] — a failed shard does not kill the session; the coordinator
    decides between reassignment and quarantine) until [Shutdown] or EOF.
    A heartbeat thread ticks every [heartbeat_s] (default 0.25 s) the
    whole time, including during long solves; a [Lease] grant whose ttl
    the cadence cannot renew clamps the interval down (with a stderr
    warning).  A duplicated order frame resends the cached reply instead
    of re-solving.  [shard_cost] must match the coordinator's
    ({!Pqdb_montecarlo.Confidence.stream_options} default); [nworkers]
    sizes this worker's own domain pool.  SIGPIPE is ignored so a
    vanished coordinator surfaces as an I/O error, not a process kill.

    Orders are read with {!Protocol.read_fd_frame}: the idle wait between
    frames is unbounded, but once a frame starts its remainder must arrive
    within [frame_timeout_s] (default 30 s) — a coordinator that tears a
    frame mid-write cannot leave the worker wedged-but-heartbeating.
    [tcp] (default false) routes all I/O through the {!Protocol} TCP fault
    wrappers and bounds sends by [frame_timeout_s] too.
    @raise Invalid_argument on bad (ε, δ), [shard_cost], [heartbeat_s] or
    [frame_timeout_s].  I/O errors on a dead peer propagate. *)

val serve :
  ?compile_fuel:int -> ?nworkers:int -> ?shard_cost:int ->
  ?heartbeat_s:float -> ?frame_timeout_s:float ->
  Rng.t -> Wtable.t -> Assignment.t list array ->
  eps:float -> delta:float -> input:in_channel -> output:out_channel -> unit
(** {!serve_session} over the fds underlying a channel pair — the
    stdin/stdout worker the coordinator's process transport spawns.
    [input] must carry no channel-buffered read-ahead; read any greeting
    off its fd ({!Protocol.read_fd_frame}), not through the channel.
    I/O errors on a dead peer propagate — the CLI turns them into a
    nonzero exit. *)

val listen :
  ?compile_fuel:int -> ?nworkers:int -> ?shard_cost:int ->
  ?heartbeat_s:float -> ?frame_timeout_s:float -> ?backlog:int ->
  ?max_sessions:int -> ?ready:(int -> unit) ->
  make_rng:(unit -> Rng.t) ->
  resolve:((string * string) option -> Wtable.t * Assignment.t list array) ->
  host:string -> port:int -> eps:float -> delta:float -> unit -> unit
(** Remote worker: bind [host:port] (TCP, [SO_REUSEADDR]; [port = 0] picks
    an ephemeral port, reported through [ready] along with any fixed one)
    and serve coordinator connections one session at a time, each a full
    {!serve_session} with [tcp:true].  The coordinator speaks first; its
    greeting [Hello]'s [source] field is passed to [resolve] to produce
    this worker's inputs ([None] = synthetic workload from local
    arguments), and resolved inputs are cached per source so a
    reconnecting coordinator finds the data warm.  [make_rng] supplies a
    fresh batch-seed RNG per session (sessions must not advance each
    other's lanes).  A session that ends — [Shutdown], EOF from a lost
    coordinator, or a faulted connection (logged to stderr) — returns the
    listener to [accept]: surviving to serve the next dial is the
    worker-side half of reconnect-resume.  [max_sessions] bounds the
    number of sessions served (default unbounded), for tests and drains.
    @raise Invalid_argument on bad parameters or an unresolvable [host];
    bind errors propagate. *)
