(** Shared dial/backoff policy for socket clients: one capped-exponential
    jittered backoff law and one retrying TCP/Unix dial, used by the
    serve-layer client, the coordinator's TCP worker transport and its
    redial loop.  Keeping the policy in one module means a fleet of
    reconnecting peers spreads out under one jitter law instead of each
    layer re-inventing (and re-synchronizing) its own. *)

val backoff_delay_s :
  ?salt:int -> retry_delay_s:float -> max_delay_s:float -> int -> float
(** The delay before retry attempt [k] (0-based): [retry_delay_s * 2^k]
    capped at [max_delay_s], scaled into [[0.5, 1.0)] of itself by a
    deterministic Weyl-sequence jitter of [salt ⊕ k].  [salt]
    (default 0, which reproduces the historical attempt-only jitter)
    decorrelates distinct connections: pass {!connection_salt} so a fleet
    of peers retrying in the same second does not thundering-herd in
    lockstep. *)

val connection_salt : Unix.file_descr -> int
(** The per-connection jitter salt: pid ⊕ fd.  Combined with the attempt
    index inside {!backoff_delay_s}, this is the (pid ⊕ fd ⊕ attempt)
    spread — distinct processes, and distinct sockets within one process,
    land on distinct points of the jitter sequence. *)

val connect :
  ?retries:int -> ?retry_delay_s:float -> ?max_delay_s:float ->
  Unix.sockaddr -> Unix.file_descr
(** Dial [addr] (TCP or Unix domain, inferred from the sockaddr),
    retrying transient failures — refused, absent path, reset,
    unreachable, timed out — up to [retries] (default 0) extra attempts
    with {!backoff_delay_s} between them, salted per connection.  Returns
    the connected close-on-exec descriptor.
    @raise Unix.Unix_error when the last attempt fails (or immediately on
    a non-transient error). *)
