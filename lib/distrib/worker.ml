open Pqdb_numeric
module Shard = Pqdb_montecarlo.Shard
module Confidence = Pqdb_montecarlo.Confidence
module Budget = Pqdb_montecarlo.Budget
module Pqdb_error = Pqdb_runtime.Pqdb_error

let probe_of rng = Printf.sprintf "%h" (Rng.float (Rng.copy rng) 1.)

(* The budget a worker reconstructs from an order's slice.  [Some 0] trials
   (or a spent deadline) means the coordinator's governor is already
   exhausted: a born-cancelled budget makes the solve degrade to its sound
   brackets immediately, exactly like a dead {!Budget.split} child. *)
let budget_of_slice ~trials ~deadline_s =
  let dead () =
    let b = Budget.create () in
    Budget.cancel b;
    Some b
  in
  match (trials, deadline_s) with
  | None, None -> None
  | Some 0, _ -> dead ()
  | _, Some d when d <= 0. -> dead ()
  | Some t, None -> Some (Budget.create ~max_trials:t ())
  | Some t, Some d -> Some (Budget.create ~max_trials:t ~deadline_s:d ())
  | None, Some d -> Some (Budget.create ~deadline_s:d ())

let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

(* One coordinator session over a pair of raw fds ([in_fd] = [out_fd] for a
   socket).  [tcp] routes the I/O through the {!Protocol} TCP fault
   wrappers and bounds sends with [frame_timeout_s] (a coordinator that
   stops draining a socket for that long is treated as gone; pipe sends to
   a live parent stay unbounded, as before). *)
let serve_session ?compile_fuel ?nworkers
    ?(shard_cost = Confidence.default_stream_options.shard_cost)
    ?(heartbeat_s = 0.25) ?(frame_timeout_s = 30.) ?(tcp = false) rng w
    clause_sets ~eps ~delta ~in_fd ~out_fd () =
  if eps <= 0. || delta <= 0. then invalid_arg "Worker.serve: eps/delta";
  if shard_cost < 1 then invalid_arg "Worker.serve: shard_cost must be >= 1";
  if heartbeat_s <= 0. then
    invalid_arg "Worker.serve: heartbeat_s must be positive";
  if frame_timeout_s <= 0. then
    invalid_arg "Worker.serve: frame_timeout_s must be positive";
  ignore_sigpipe ();
  let n = Array.length clause_sets in
  let plan = Shard.plan ~eps ~delta ~max_cost:shard_cost clause_sets in
  (* The probe is drawn from a copy BEFORE the lanes split, mirroring the
     coordinator, so both sides advance their parent RNG identically. *)
  let probe = probe_of rng in
  let lanes = if n = 0 then [||] else Rng.split_n rng n in
  let meta =
    Shard.meta_payload ~n ~eps ~delta ~fuel:compile_fuel ~shard_cost
  in
  let wlock = Mutex.create () in
  let send msg =
    Mutex.protect wlock (fun () ->
        if tcp then Protocol.tcp_write_fd ~timeout_s:frame_timeout_s out_fd msg
        else Protocol.write_fd out_fd msg)
  in
  let stop = Atomic.make false in
  (* The coordinator's Lease grant can clamp this below [heartbeat_s]: a
     heartbeat that cannot renew the lease in time is indistinguishable
     from a partition on the other side. *)
  let hb_delay = Atomic.make heartbeat_s in
  send (Protocol.Hello { meta; probe; source = None });
  (* Liveness ticks keep flowing while a long solve runs, so the
     coordinator can tell "slow" from "gone".  A failed tick means the
     coordinator hung up; the main loop will see EOF and exit. *)
  let hb =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          Thread.delay (Atomic.get hb_delay);
          if not (Atomic.get stop) then
            try send Protocol.Heartbeat with _ -> Atomic.set stop true
        done)
      ()
  in
  (* A duplicated order frame (the "distrib.tcp.dup" fault, or a
     coordinator retransmit) must not re-solve the shard: the last reply
     is cached per (index, epoch) and resent verbatim. *)
  let last_reply : ((int * int) * Protocol.msg) option ref = ref None in
  let handle_order ~index ~epoch ~fp ~trials ~deadline_s =
    match !last_reply with
    | Some ((i, e), reply) when i = index && e = epoch -> send reply
    | _ ->
        let reply =
          if index < 0 || index >= Array.length plan then
            Protocol.Failed { index; epoch; detail = "unknown shard index" }
          else
            let sh = plan.(index) in
            let own_fp = Shard.fingerprint clause_sets sh in
            if not (String.equal own_fp fp) then
              Protocol.Failed
                {
                  index;
                  epoch;
                  detail =
                    Printf.sprintf
                      "shard fingerprint mismatch (order %s, data %s)" fp
                      own_fp;
                }
            else
              let budget = budget_of_slice ~trials ~deadline_s in
              match
                Confidence.solve_shard ?budget ?nworkers ?compile_fuel ~lanes
                  w clause_sets sh ~fp ~eps ~delta
              with
              | o ->
                  Protocol.Outcome
                    { index; epoch; payload = Shard.to_payload o }
              | exception e ->
                  let detail =
                    match e with
                    | Pqdb_error.Error t -> Pqdb_error.to_string t
                    | e -> Printexc.to_string e
                  in
                  Protocol.Failed { index; epoch; detail }
        in
        last_reply := Some ((index, epoch), reply);
        send reply
  in
  (* Orders are read straight off the fd with frame-boundary patience: an
     idle wait between orders is unbounded, but once a frame starts the
     rest must arrive within [frame_timeout_s].  A torn coordinator write
     would otherwise wedge this loop forever while the heartbeat thread
     keeps advertising a live worker — the worst failure shape, a zombie
     that looks healthy. *)
  let read_frame () =
    if tcp then Protocol.tcp_read_fd_frame ~timeout_s:frame_timeout_s in_fd
    else Protocol.read_fd_frame ~timeout_s:frame_timeout_s in_fd
  in
  let rec loop () =
    if Atomic.get stop then ()
    else
      match read_frame () with
      | None | Some Protocol.Shutdown -> ()
      | Some (Protocol.Order { index; epoch; fp; trials; deadline_s }) ->
          handle_order ~index ~epoch ~fp ~trials ~deadline_s;
          loop ()
      | Some (Protocol.Lease { ttl_s }) ->
          (* The grant is advisory except when our cadence cannot renew it:
             then clamp so at least ~3 ticks fit inside every window. *)
          if Atomic.get hb_delay >= ttl_s /. 3. then begin
            let clamped = Float.max 0.01 (ttl_s /. 4.) in
            Printf.eprintf
              "pqdb worker: heartbeat interval %gs cannot renew a %gs \
               lease; clamping to %gs\n\
               %!"
              (Atomic.get hb_delay) ttl_s clamped;
            Atomic.set hb_delay clamped
          end;
          loop ()
      | Some (Protocol.Hello _ | Protocol.Outcome _ | Protocol.Failed _
             | Protocol.Heartbeat | Protocol.Query _ | Protocol.Reply _) ->
          loop ()
  in
  let outcome = try Ok (loop ()) with e -> Error e in
  Atomic.set stop true;
  Thread.join hb;
  match outcome with Ok () -> () | Error e -> raise e

let serve ?compile_fuel ?nworkers ?shard_cost ?heartbeat_s ?frame_timeout_s
    rng w clause_sets ~eps ~delta ~input ~output =
  let in_fd = Unix.descr_of_in_channel input in
  let out_fd = Unix.descr_of_out_channel output in
  serve_session ?compile_fuel ?nworkers ?shard_cost ?heartbeat_s
    ?frame_timeout_s rng w clause_sets ~eps ~delta ~in_fd ~out_fd ();
  try flush output with _ -> ()

(* Remote listener: accept coordinator connections on a TCP socket, one
   session at a time.  Each session starts with the coordinator's greeting
   [Hello]; its [source] field names the data to load, which [resolve]
   maps (and this loop caches) to the worker's inputs.  A lost coordinator
   ends the session with EOF and the listener simply returns to [accept] —
   "reconnect-resume" from the worker's side is surviving to serve the
   next dial with the data already warm. *)
let listen ?compile_fuel ?nworkers ?shard_cost ?heartbeat_s ?frame_timeout_s
    ?(backlog = 16) ?max_sessions ?(ready = fun _ -> ()) ~make_rng ~resolve
    ~host ~port ~eps ~delta () =
  ignore_sigpipe ();
  let addr =
    let ip =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } ->
            invalid_arg (Printf.sprintf "Worker.listen: no address for %S" host)
        | h -> h.Unix.h_addr_list.(0)
        | exception Not_found ->
            invalid_arg (Printf.sprintf "Worker.listen: unknown host %S" host))
    in
    Unix.ADDR_INET (ip, port)
  in
  let lfd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  let cleanup () = try Unix.close lfd with Unix.Unix_error _ -> () in
  (try
     Unix.setsockopt lfd Unix.SO_REUSEADDR true;
     Unix.bind lfd addr;
     Unix.listen lfd backlog
   with e ->
     cleanup ();
     raise e);
  let bound_port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  ready bound_port;
  let cache = Hashtbl.create 4 in
  let served = ref 0 in
  let continue () =
    match max_sessions with None -> true | Some cap -> !served < cap
  in
  (try
     while continue () do
       match Unix.accept ~cloexec:true lfd with
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | fd, _ ->
           incr served;
           (try Unix.setsockopt fd Unix.TCP_NODELAY true
            with Unix.Unix_error _ -> ());
           let session () =
             (* The coordinator speaks first; a peer that is not one (or
                whose greeting never arrives) is dropped without prejudice
                to the listener. *)
             match
               Protocol.tcp_read_fd ~timeout_s:30. fd
             with
             | Some (Protocol.Hello { source; _ }) ->
                 let w, sets =
                   match Hashtbl.find_opt cache source with
                   | Some v -> v
                   | None ->
                       let v = resolve source in
                       Hashtbl.replace cache source v;
                       v
                 in
                 serve_session ?compile_fuel ?nworkers ?shard_cost
                   ?heartbeat_s ?frame_timeout_s ~tcp:true (make_rng ()) w
                   sets ~eps ~delta ~in_fd:fd ~out_fd:fd ()
             | Some _ | None -> ()
           in
           (match session () with
           | () -> ()
           | exception e ->
               (* A faulted or crashed session must not take the listener
                  down; log and go back to accept.  The brief pause keeps a
                  fault storm (e.g. an env-armed CI matrix) from spinning. *)
               Printf.eprintf "pqdb worker: session error: %s\n%!"
                 (match e with
                 | Pqdb_error.Error t -> Pqdb_error.to_string t
                 | e -> Printexc.to_string e);
               Unix.sleepf 0.05);
           (try Unix.shutdown fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ());
           (try Unix.close fd with Unix.Unix_error _ -> ())
     done
   with e ->
     cleanup ();
     raise e);
  cleanup ()
