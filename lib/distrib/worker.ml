open Pqdb_numeric
module Shard = Pqdb_montecarlo.Shard
module Confidence = Pqdb_montecarlo.Confidence
module Budget = Pqdb_montecarlo.Budget
module Pqdb_error = Pqdb_runtime.Pqdb_error

let probe_of rng = Printf.sprintf "%h" (Rng.float (Rng.copy rng) 1.)

(* The budget a worker reconstructs from an order's slice.  [Some 0] trials
   (or a spent deadline) means the coordinator's governor is already
   exhausted: a born-cancelled budget makes the solve degrade to its sound
   brackets immediately, exactly like a dead {!Budget.split} child. *)
let budget_of_slice ~trials ~deadline_s =
  let dead () =
    let b = Budget.create () in
    Budget.cancel b;
    Some b
  in
  match (trials, deadline_s) with
  | None, None -> None
  | Some 0, _ -> dead ()
  | _, Some d when d <= 0. -> dead ()
  | Some t, None -> Some (Budget.create ~max_trials:t ())
  | Some t, Some d -> Some (Budget.create ~max_trials:t ~deadline_s:d ())
  | None, Some d -> Some (Budget.create ~deadline_s:d ())

let serve ?compile_fuel ?nworkers
    ?(shard_cost = Confidence.default_stream_options.shard_cost)
    ?(heartbeat_s = 0.25) ?(frame_timeout_s = 30.) rng w clause_sets ~eps
    ~delta ~input ~output =
  if eps <= 0. || delta <= 0. then invalid_arg "Worker.serve: eps/delta";
  if shard_cost < 1 then invalid_arg "Worker.serve: shard_cost must be >= 1";
  if frame_timeout_s <= 0. then
    invalid_arg "Worker.serve: frame_timeout_s must be positive";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let n = Array.length clause_sets in
  let plan = Shard.plan ~eps ~delta ~max_cost:shard_cost clause_sets in
  (* The probe is drawn from a copy BEFORE the lanes split, mirroring the
     coordinator, so both sides advance their parent RNG identically. *)
  let probe = probe_of rng in
  let lanes = if n = 0 then [||] else Rng.split_n rng n in
  let meta =
    Shard.meta_payload ~n ~eps ~delta ~fuel:compile_fuel ~shard_cost
  in
  let wlock = Mutex.create () in
  let send msg = Mutex.protect wlock (fun () -> Protocol.write output msg) in
  let stop = Atomic.make false in
  send (Protocol.Hello { meta; probe; source = None });
  (* Liveness ticks keep flowing while a long solve runs, so the
     coordinator can tell "slow" from "gone".  A failed tick means the
     coordinator hung up; the main loop will see EOF and exit. *)
  let hb =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          Thread.delay heartbeat_s;
          if not (Atomic.get stop) then
            try send Protocol.Heartbeat with _ -> Atomic.set stop true
        done)
      ()
  in
  let handle_order ~index ~fp ~trials ~deadline_s =
    if index < 0 || index >= Array.length plan then
      send (Protocol.Failed { index; detail = "unknown shard index" })
    else
      let sh = plan.(index) in
      let own_fp = Shard.fingerprint clause_sets sh in
      if not (String.equal own_fp fp) then
        send
          (Protocol.Failed
             {
               index;
               detail =
                 Printf.sprintf "shard fingerprint mismatch (order %s, data %s)"
                   fp own_fp;
             })
      else
        let budget = budget_of_slice ~trials ~deadline_s in
        match
          Confidence.solve_shard ?budget ?nworkers ?compile_fuel ~lanes w
            clause_sets sh ~fp ~eps ~delta
        with
        | o -> send (Protocol.Outcome { payload = Shard.to_payload o })
        | exception e ->
            let detail =
              match e with
              | Pqdb_error.Error t -> Pqdb_error.to_string t
              | e -> Printexc.to_string e
            in
            send (Protocol.Failed { index; detail })
  in
  (* Orders are read straight off the fd with frame-boundary patience: an
     idle wait between orders is unbounded, but once a frame starts the
     rest must arrive within [frame_timeout_s].  A torn coordinator write
     would otherwise wedge this loop forever while the heartbeat thread
     keeps advertising a live worker — the worst failure shape, a zombie
     that looks healthy.  (Nothing may pre-read [input] through the
     channel's buffer: the CLI reads its greeting with the fd reader too.) *)
  let in_fd = Unix.descr_of_in_channel input in
  let rec loop () =
    if Atomic.get stop then ()
    else
      match Protocol.read_fd_frame ~timeout_s:frame_timeout_s in_fd with
      | None | Some Protocol.Shutdown -> ()
      | Some (Protocol.Order { index; fp; trials; deadline_s }) ->
          handle_order ~index ~fp ~trials ~deadline_s;
          loop ()
      | Some (Protocol.Hello _ | Protocol.Outcome _ | Protocol.Failed _
             | Protocol.Heartbeat | Protocol.Query _ | Protocol.Reply _) ->
          loop ()
  in
  let outcome = try Ok (loop ()) with e -> Error e in
  Atomic.set stop true;
  Thread.join hb;
  (try flush output with _ -> ());
  match outcome with Ok () -> () | Error e -> raise e
