open Pqdb_numeric
module Shard = Pqdb_montecarlo.Shard
module Confidence = Pqdb_montecarlo.Confidence
module Budget = Pqdb_montecarlo.Budget
module Faultpoint = Pqdb_runtime.Faultpoint
module Pqdb_error = Pqdb_runtime.Pqdb_error

type transport = {
  send : Protocol.msg -> unit;
  recv : unit -> Protocol.msg option;
  pid : int option;
  remote : bool;
  close : unit -> unit;
}

let channel_transport ?pid ~close input output =
  {
    send = (fun m -> Protocol.write output m);
    recv = (fun () -> Protocol.read input);
    pid;
    remote = false;
    close;
  }

(* Coordinator-side transports speak frames directly over the pipe fds
   ({!Protocol.read_fd}/{!Protocol.write_fd}) so [io_timeout_s] can bound
   every send and recv with [select] — a worker that wedges mid-frame (or a
   full pipe nobody drains) surfaces as a typed [Timeout] in the reader
   thread, which the event loop treats like any other lost worker.  With no
   timeout the behavior is the old blocking one.  The worker keeps its
   buffered stdin/stdout channels: a dead coordinator is an EOF there, and
   heartbeats cover the idle-but-alive case. *)
let fd_transport ?io_timeout_s ?pid ~close ~in_fd ~out_fd () =
  {
    send = (fun m -> Protocol.write_fd ?timeout_s:io_timeout_s out_fd m);
    recv = (fun () -> Protocol.read_fd ?timeout_s:io_timeout_s in_fd);
    pid;
    remote = false;
    close;
  }

let process_transport ?io_timeout_s argv =
  let to_child_r, to_child_w = Unix.pipe () in
  let from_child_r, from_child_w = Unix.pipe () in
  (* The parent-side ends must not leak into sibling workers: a sibling
     holding a dup of this worker's stdout write end would mask its EOF on
     death.  (create_process dup2s the child-side ends onto 0/1, which
     clears close-on-exec for the child itself.) *)
  List.iter Unix.set_close_on_exec [ to_child_w; from_child_r; to_child_r; from_child_w ];
  let pid = Unix.create_process argv.(0) argv to_child_r from_child_w Unix.stderr in
  Unix.close to_child_r;
  Unix.close from_child_w;
  let close () =
    (try Unix.close to_child_w with Unix.Unix_error _ -> ());
    try Unix.close from_child_r with Unix.Unix_error _ -> ()
  in
  fd_transport ?io_timeout_s ~pid ~close ~in_fd:from_child_r ~out_fd:to_child_w ()

let thread_transport ?io_timeout_s serve =
  let to_w_r, to_w_w = Unix.pipe () in
  let from_w_r, from_w_w = Unix.pipe () in
  let w_in = Unix.in_channel_of_descr to_w_r in
  let w_out = Unix.out_channel_of_descr from_w_w in
  let th =
    Thread.create
      (fun () ->
        (try serve ~input:w_in ~output:w_out with _ -> ());
        (try close_out w_out with _ -> ());
        try close_in w_in with _ -> ())
      ()
  in
  let close () =
    (* Closing the order pipe EOFs the worker loop; join before closing
       our read side so the worker is never writing into a closed pipe. *)
    (try Unix.close to_w_w with Unix.Unix_error _ -> ());
    (try Thread.join th with _ -> ());
    try Unix.close from_w_r with Unix.Unix_error _ -> ()
  in
  fd_transport ?io_timeout_s ~close ~in_fd:from_w_r ~out_fd:to_w_w ()

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } ->
        invalid_arg (Printf.sprintf "tcp_transport: no address for %S" host)
    | h -> h.Unix.h_addr_list.(0)
    | exception Not_found ->
        invalid_arg (Printf.sprintf "tcp_transport: unknown host %S" host))

(* Remote worker over TCP.  I/O goes through the {!Protocol} TCP fault
   wrappers so the network failure modes (drop, half-open stall, duplicate
   delivery) are injectable; [close] shuts the socket down first so a
   reader thread blocked in [recv] wakes with EOF instead of leaking. *)
let tcp_transport ?io_timeout_s ?(retries = 0) ?(retry_delay_s = 0.2)
    ?(max_delay_s = 2.0) ~host ~port () =
  let addr = Unix.ADDR_INET (resolve_host host, port) in
  let fd = Dial.connect ~retries ~retry_delay_s ~max_delay_s addr in
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  {
    send = (fun m -> Protocol.tcp_write_fd ?timeout_s:io_timeout_s fd m);
    recv = (fun () -> Protocol.tcp_read_fd ?timeout_s:io_timeout_s fd);
    pid = None;
    remote = true;
    close =
      (fun () ->
        (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ());
  }

type summary = {
  stream : Confidence.stream_summary;
  workers_spawned : int;
  workers_lost : int;
  reassigned : int;
  reconnects : int;
  leases_expired : int;
  late_drops : int;
  fallback_shards : int;
  compacted : (int * int) option;
}

(* A shard assignment is identified by its lease epoch: every (re)issue of
   a shard draws a fresh epoch, so an outcome names exactly the order that
   requested it and late deliveries from superseded leases are legible. *)
type assignment = { shard : int; epoch : int }

(* [Suspended] is the partition-tolerance state: a remote worker whose
   lease expired.  Its in-flight shard (if any) was requeued, it is not
   dealt further work, but its socket is left alone — any traffic from it
   renews the lease and returns it to [Idle].  Process workers are killed
   instead (PR 5 behavior): their liveness is local, so a silent one is
   dead, not partitioned. *)
type wstate = Starting | Idle | Busy of assignment | Suspended | Dead

type worker = {
  key : int;  (* unique per connection — reconnects get a fresh key *)
  id : int;  (* logical spawn slot, stable across reconnects *)
  tr : transport;
  mutable state : wstate;
  mutable last_seen : float;
}

type event = Msg of Protocol.msg | Gone

let sum_trials = Array.fold_left ( + ) 0

let run ?budget ?nworkers ?compile_fuel
    ?(options = Confidence.default_stream_options) ?(lease_ttl_s = 30.)
    ?(max_reconnects = 0) ?(reconnect_delay_s = 0.25) ?source ~workers:nw
    ~spawn rng w clause_sets ~eps ~delta ~emit =
  if eps <= 0. || delta <= 0. then invalid_arg "Coordinator.run";
  if nw < 1 then invalid_arg "Coordinator.run: workers must be >= 1";
  if options.Confidence.shard_cost < 1 then
    invalid_arg "Coordinator.run: shard_cost must be >= 1";
  if options.retries < 0 then
    invalid_arg "Coordinator.run: retries must be >= 0";
  if options.resume && options.checkpoint = None then
    invalid_arg "Coordinator.run: resume requires a checkpoint journal";
  if lease_ttl_s <= 0. then
    invalid_arg "Coordinator.run: lease_ttl_s must be positive";
  if max_reconnects < 0 then
    invalid_arg "Coordinator.run: max_reconnects must be >= 0";
  if reconnect_delay_s <= 0. then
    invalid_arg "Coordinator.run: reconnect_delay_s must be positive";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let n = Array.length clause_sets in
  let plan =
    Shard.plan ~eps ~delta ~max_cost:options.shard_cost clause_sets
  in
  let nshards = Array.length plan in
  let probe = Worker.probe_of rng in
  let lanes = if n = 0 then [||] else Rng.split_n rng n in
  let meta =
    Shard.meta_payload ~n ~eps ~delta ~fuel:compile_fuel
      ~shard_cost:options.shard_cost
  in
  let journal, resumed =
    match options.checkpoint with
    | None -> (Shard.null_journal (), Hashtbl.create 1)
    | Some path ->
        Shard.open_journal ~retries:options.retries ~resume:options.resume
          ~meta ~plan ~clause_sets path
  in
  let fps = Array.map (fun sh -> Shard.fingerprint clause_sets sh) plan in
  (* Every resolved shard lands here (resumed, worker, fallback or
     quarantined); emission walks the plan in order over it. *)
  let results : (int, Shard.outcome) Hashtbl.t = Hashtbl.create (max 1 nshards) in
  Hashtbl.iter (fun i o -> Hashtbl.replace results i o) resumed;
  (match budget with
  | None -> ()
  | Some b ->
      Hashtbl.iter
        (fun _ (o : Shard.outcome) -> Budget.spend b (sum_trials o.trials))
        resumed);
  (* Static budget slices: the remaining trial allowance dealt over the
     unresolved shards proportionally to a-priori cost, exactly
     ({!Budget.allocate}).  Unlike the sequential stream's re-split against
     live remainder, slices are fixed up front so a shard's allowance does
     not depend on which worker runs it or in what order — retries and
     reassignments replay the same slice. *)
  let todo =
    Array.to_list
      (Array.of_seq
         (Seq.filter
            (fun i -> not (Hashtbl.mem results i))
            (Seq.init nshards Fun.id)))
  in
  let trial_slices : (int, int) Hashtbl.t = Hashtbl.create 16 in
  (match budget with
  | Some b when Budget.remaining_trials b <> max_int ->
      let idx = Array.of_list todo in
      let costs = Array.map (fun i -> plan.(i).Shard.cost) idx in
      let shares = Budget.allocate ~trials:(Budget.remaining_trials b) ~costs in
      Array.iteri (fun k i -> Hashtbl.replace trial_slices i shares.(k)) idx
  | _ -> ());
  let slice_of i =
    match budget with
    | None -> (None, None)
    | Some b ->
        let trials =
          if Budget.cancelled b then Some 0 else Hashtbl.find_opt trial_slices i
        in
        (trials, Budget.remaining_deadline b)
  in
  (* Pending queue: LPT — deal the heaviest shards first so the tail of the
     run is small shards that balance across workers. *)
  let pending =
    ref
      (List.sort
         (fun a b ->
           match compare plan.(b).Shard.cost plan.(a).Shard.cost with
           | 0 -> compare a b
           | c -> c)
         todo)
  in
  let failures : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  let workers_lost = ref 0 in
  let reassigned = ref 0 in
  let reconnects = ref 0 in
  let leases_expired = ref 0 in
  let late_drops = ref 0 in
  let fallback_shards = ref 0 in
  let quarantined = ref [] in
  (* Lease epochs: a global counter stamps every order; [current_epoch]
     remembers the latest epoch issued per shard so ingestion can tell a
     late-but-genuine delivery (epoch ≤ current, first-wins) from
     corruption (an epoch never issued). *)
  let epoch_counter = ref 0 in
  let current_epoch : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let issued index epoch =
    index >= 0 && index < nshards
    &&
    match Hashtbl.find_opt current_epoch index with
    | Some cur -> epoch >= 1 && epoch <= cur
    | None -> false
  in
  let events : (int * event) Queue.t = Queue.create () in
  let elock = Mutex.create () in
  let push ev = Mutex.protect elock (fun () -> Queue.add ev events) in
  let drain () =
    Mutex.protect elock (fun () ->
        let l = List.of_seq (Queue.to_seq events) in
        Queue.clear events;
        l)
  in
  (* The fleet grows over time (redials add fresh connections), so worker
     records carry a unique [key] — the reader thread and event queue speak
     keys, never ids, so a late event from a superseded connection cannot
     be mistaken for its replacement. *)
  let fleet : worker list ref = ref [] in
  let next_key = ref 0 in
  let admit id =
    match
      Faultpoint.fire "distrib.spawn";
      spawn id
    with
    | tr ->
        let key = !next_key in
        incr next_key;
        let wk = { key; id; tr; state = Starting; last_seen = Unix.gettimeofday () } in
        let _reader : Thread.t =
          Thread.create
            (fun () ->
              let rec rloop () =
                match tr.recv () with
                | Some m ->
                    push (key, Msg m);
                    rloop ()
                | None -> push (key, Gone)
                | exception _ -> push (key, Gone)
              in
              rloop ())
            ()
        in
        (* Greeting: tells a bare worker process where the data lives
           ([source]) before it must reconstruct the run.  Workers with
           their own data arguments ignore it; a send failure just means
           the worker is already gone, which the reader will notice. *)
        (try wk.tr.send (Protocol.Hello { meta; probe; source })
         with _ -> ());
        fleet := !fleet @ [ wk ];
        Some wk
    | exception _ -> None
  in
  let workers_spawned =
    List.length (List.filter_map admit (List.init nw Fun.id))
  in
  let find_worker key = List.find (fun wk -> wk.key = key) !fleet in
  let live () = List.filter (fun wk -> wk.state <> Dead) !fleet in
  (* Workers the dealer can still count on: [Suspended] is excluded — a
     partitioned worker may never heal, so it must not delay fallback. *)
  let active () =
    List.filter
      (fun wk ->
        match wk.state with
        | Starting | Idle | Busy _ -> true
        | Suspended | Dead -> false)
      !fleet
  in
  let requeue i =
    (* Reassigned shards go back in cost order; a fresh attempt re-copies
       the shard's lane slice, so whoever picks it up reproduces the
       original stream bit for bit. *)
    pending :=
      List.sort
        (fun a b ->
          match compare plan.(b).Shard.cost plan.(a).Shard.cost with
          | 0 -> compare a b
          | c -> c)
        (i :: !pending)
  in
  let reap wk =
    match wk.tr.pid with
    | Some pid -> ( try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    | None -> ()
  in
  (* Redial queue: a lost remote connection is re-dialed (the same spawn
     slot, so the same endpoint) after a capped jittered backoff, up to
     [max_reconnects] times per slot.  A successful re-handshake resets
     the slot's attempt count. *)
  let redials : (int * float) list ref = ref [] in
  let redial_attempts : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let schedule_redial id =
    let used = Option.value ~default:0 (Hashtbl.find_opt redial_attempts id) in
    if used < max_reconnects then begin
      Hashtbl.replace redial_attempts id (used + 1);
      let delay =
        Dial.backoff_delay_s
          ~salt:(Unix.getpid () lxor id)
          ~retry_delay_s:reconnect_delay_s
          ~max_delay_s:(16. *. reconnect_delay_s)
          used
      in
      redials := (id, Unix.gettimeofday () +. delay) :: !redials
    end
  in
  let bury ?(reconnect = true) wk =
    if wk.state <> Dead then begin
      (match wk.state with
      | Busy a ->
          incr reassigned;
          requeue a.shard
      | _ -> ());
      wk.state <- Dead;
      incr workers_lost;
      wk.tr.close ();
      reap wk;
      if reconnect && wk.tr.remote then schedule_redial wk.id
    end
  in
  let kill ?reconnect wk =
    (match wk.tr.pid with
    | Some pid -> ( try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
    | None -> ());
    bury ?reconnect wk
  in
  let quarantine i err =
    let e =
      Pqdb_error.Error
        (Pqdb_error.Task_failure { index = i; inner = Failure err })
    in
    let o =
      Confidence.apriori_outcome ?compile_fuel w clause_sets plan.(i)
        ~fp:fps.(i) ~error:e
    in
    quarantined := (i, Option.get o.Shard.quarantined) :: !quarantined;
    Hashtbl.replace results i o
  in
  let record_outcome (o : Shard.outcome) =
    (match budget with
    | Some b -> Budget.spend b (sum_trials o.trials)
    | None -> ());
    (match o.quarantined with
    | Some _ -> ()
    | None -> Shard.journal_append journal (Shard.to_payload o));
    Hashtbl.replace results o.shard.Shard.index o
  in
  let shard_failed wid i detail =
    (* One entry per failed attempt (worker ids, duplicates kept): the
       quarantine cap is total attempts — mirroring the sequential stream's
       retry budget — while assignment preference (below) spreads the
       retries over distinct workers whenever the fleet allows it. *)
    let attempts = wid :: Option.value ~default:[] (Hashtbl.find_opt failures i) in
    Hashtbl.replace failures i attempts;
    if List.length attempts > options.retries then quarantine i detail
    else requeue i
  in
  (* Idempotent ingestion: the (index, epoch) stamp decides.  An epoch never
     issued is corruption (kill the sender); an already-resolved shard makes
     this a duplicate or superseded delivery (first-wins — count and drop;
     outcomes for a shard are bit-identical whoever computes them, so the
     winner's bytes are THE bytes); otherwise a genuine resolution, even
     when the lease that ordered it has since been superseded. *)
  let ingest_outcome wk ~index ~epoch payload =
    if not (issued index epoch) then kill wk
    else if Hashtbl.mem results index then incr late_drops
    else
      match
        Shard.of_payload ~resumed:false
          ~source:(Printf.sprintf "worker-%d" wk.id)
          ~record:index payload
      with
      | o
        when o.Shard.shard = plan.(index) && String.equal o.Shard.fp fps.(index)
             && o.Shard.quarantined = None ->
          record_outcome o;
          (* A late resolution may race its own reassignment: drop the
             shard from the queue so nobody re-solves it. *)
          pending := List.filter (fun j -> j <> index) !pending
      | _ | (exception Pqdb_error.Error (Pqdb_error.Malformed_input _)) ->
          (* A worker answering with the wrong shard, a drifted
             fingerprint or a torn record is not trustworthy for further
             orders either. *)
          kill wk
  in
  let handle_msg wk msg =
    wk.last_seen <- Unix.gettimeofday ();
    (* Any traffic renews the lease; a suspended worker that speaks again
       has healed its partition and rejoins the pool. *)
    (match (wk.state, msg) with
    | Suspended, (Protocol.Heartbeat | Protocol.Outcome _ | Protocol.Failed _)
      ->
        wk.state <- Idle
    | _ -> ());
    match (wk.state, msg) with
    | Starting, Protocol.Hello { meta = m; probe = p; source = _ } ->
        if String.equal m meta && String.equal p probe then begin
          wk.state <- Idle;
          Hashtbl.remove redial_attempts wk.id;
          (* Grant the liveness lease; a send failure means the worker is
             already gone and the reader will notice. *)
          try wk.tr.send (Protocol.Lease { ttl_s = lease_ttl_s }) with _ -> ()
        end
        else begin
          (* Well-formed but wrong run: the worker would compute plausible
             garbage.  Refuse it at the door — and do not redial it; the
             same endpoint would only drift again.  Say why on stderr: a
             silently shrinking fleet (typically mismatched --eps/--gen/
             --compile-fuel on a remote worker) is miserable to debug. *)
          Printf.eprintf
            "pqdb coordinator: refusing worker %d: handshake %s drift \
             (remote flags must match this run's data and plan)\n%!"
            wk.id
            (if String.equal m meta then "probe" else "meta");
          (try wk.tr.send Protocol.Shutdown with _ -> ());
          kill ~reconnect:false wk
        end
    | (Idle | Busy _), Protocol.Hello { meta = m; probe = p; source = _ } ->
        (* A duplicated greeting frame is benign iff it matches; anything
           else is drift mid-session. *)
        if not (String.equal m meta && String.equal p probe) then kill wk
    | _, Protocol.Heartbeat -> ()
    | (Idle | Busy _), Protocol.Outcome { index; epoch; payload } ->
        (match wk.state with
        | Busy a when a.shard = index && a.epoch = epoch -> wk.state <- Idle
        | _ -> ());
        ingest_outcome wk ~index ~epoch payload
    | (Idle | Busy _), Protocol.Failed { index; epoch; detail } -> (
        match wk.state with
        | Busy a when a.shard = index && a.epoch = epoch ->
            wk.state <- Idle;
            shard_failed wk.id index detail
        | _ ->
            (* A late or duplicated failure from a superseded lease: the
               shard was already requeued (or resolved); count and drop.
               An epoch never issued is corruption. *)
            if issued index epoch then incr late_drops else kill wk)
    | _, Protocol.Shutdown -> bury wk
    | _, (Protocol.Hello _ | Protocol.Order _ | Protocol.Outcome _
         | Protocol.Failed _ | Protocol.Lease _ | Protocol.Query _
         | Protocol.Reply _) ->
        (* Out-of-protocol traffic: treat like corruption. *)
        kill wk
  in
  let assign wk i =
    let trials, deadline_s = slice_of i in
    incr epoch_counter;
    let epoch = !epoch_counter in
    Hashtbl.replace current_epoch i epoch;
    match
      wk.tr.send
        (Protocol.Order { index = i; epoch; fp = fps.(i); trials; deadline_s })
    with
    | () -> wk.state <- Busy { shard = i; epoch }
    | exception _ ->
        requeue i;
        bury wk
  in
  (* In-process fallback: with every worker gone the coordinator degrades
     to the sequential stream's own retry/quarantine loop over whatever is
     left — same solve, same slices, same outcomes. *)
  let solve_local i =
    let sh = plan.(i) in
    let budget_for_attempt () =
      let trials, deadline_s = slice_of i in
      Worker.budget_of_slice ~trials ~deadline_s
    in
    let rec go attempt =
      match
        Confidence.solve_shard ?budget:(budget_for_attempt ()) ?nworkers
          ?compile_fuel ~lanes w clause_sets sh ~fp:fps.(i) ~eps ~delta
      with
      | o -> record_outcome o
      | exception e ->
          if attempt >= options.retries then
            let detail =
              match e with
              | Pqdb_error.Error t -> Pqdb_error.to_string t
              | e -> Printexc.to_string e
            in
            quarantine i detail
          else begin
            Unix.sleepf (Shard.backoff_s ~attempt:(attempt + 1));
            go (attempt + 1)
          end
    in
    incr fallback_shards;
    go 0
  in
  let cursor = ref 0 in
  let emit_ready () =
    while
      !cursor < nshards
      &&
      match Hashtbl.find_opt results !cursor with
      | Some o ->
          emit o;
          incr cursor;
          true
      | None -> false
    do
      ()
    done
  in
  let unresolved () = Hashtbl.length results < nshards in
  (try
     while unresolved () do
       let evs = drain () in
       List.iter
         (fun (key, ev) ->
           let wk = find_worker key in
           match ev with
           | Msg m -> if wk.state <> Dead then handle_msg wk m
           | Gone -> bury wk)
         evs;
       let now = Unix.gettimeofday () in
       (* Lease watchdog.  A silent process worker is dead: kill it (its
          liveness is local — PR 5 behavior).  A silent remote worker may
          be partitioned or half-open: suspend it — requeue its shard,
          stop dealing to it, leave the socket alone so it can rejoin by
          speaking again.  A remote worker that never completed its
          handshake within the lease is gone (and redialable).  In-thread
          workers are exempt: they cannot be killed, only joined. *)
       List.iter
         (fun wk ->
           if now -. wk.last_seen > lease_ttl_s then
             if wk.tr.pid <> None then kill wk
             else if wk.tr.remote then
               match wk.state with
               | Busy a ->
                   incr leases_expired;
                   incr reassigned;
                   requeue a.shard;
                   wk.state <- Suspended
               | Idle ->
                   incr leases_expired;
                   wk.state <- Suspended
               | Starting -> kill wk
               | Suspended | Dead -> ())
         (live ());
       (* Fire due redials: a fresh connection to the lost slot's endpoint,
          a fresh handshake, a fresh key.  A failed dial re-arms the next
          backoff step until the slot's attempts run out. *)
       (if !redials <> [] then
          let due, later = List.partition (fun (_, d) -> d <= now) !redials in
          redials := later;
          List.iter
            (fun (id, _) ->
              match admit id with
              | Some _ -> incr reconnects
              | None -> schedule_redial id)
            due);
       let idle = List.filter (fun wk -> wk.state = Idle) (live ()) in
       List.iter
         (fun wk ->
           (* Prefer a shard this worker has not already failed, so retries
              land on distinct workers when the fleet allows; fall back to
              the head rather than stall when it does not. *)
           let fresh i =
             match Hashtbl.find_opt failures i with
             | Some ws -> not (List.mem wk.id ws)
             | None -> true
           in
           let picked =
             match List.find_opt fresh !pending with
             | Some i -> Some i
             | None -> ( match !pending with [] -> None | i :: _ -> Some i)
           in
           match picked with
           | None -> ()
           | Some i ->
               pending := List.filter (fun j -> j <> i) !pending;
               assign wk i)
         idle;
       if active () = [] && !redials = [] then
         (* No dealable worker and no redial pending: finish in-process.
            Shards still marked in-flight were requeued by [bury] or
            suspension; a partitioned worker that might heal later must
            not delay termination (its late outcomes are dedup'd). *)
         while unresolved () do
           match !pending with
           | i :: rest ->
               pending := rest;
               solve_local i;
               emit_ready ()
           | [] -> assert false
         done
       else begin
         emit_ready ();
         (* Poll only when this round was quiet; a round that consumed
            events or dealt work re-checks immediately. *)
         if unresolved () && evs = [] then Thread.delay 0.005
       end
     done;
     emit_ready ()
   with e ->
     List.iter (fun wk -> kill ~reconnect:false wk) (live ());
     Shard.close_journal journal;
     raise e);
  List.iter
    (fun wk ->
      (* No Shutdown for a suspended worker: its link is suspect and an
         unbounded send could wedge the exit; closing the socket EOFs it. *)
      (match wk.state with
      | Suspended -> ()
      | _ -> ( try wk.tr.send Protocol.Shutdown with _ -> ()));
      wk.state <- Dead;
      wk.tr.close ();
      reap wk)
    (live ());
  Shard.close_journal journal;
  let quarantined =
    List.sort (fun (a, _) (b, _) -> compare a b) !quarantined
  in
  let stream_trials = ref 0 in
  let all_complete = ref true in
  Hashtbl.iter
    (fun _ (o : Shard.outcome) ->
      stream_trials := !stream_trials + sum_trials o.trials;
      if not o.complete then all_complete := false)
    results;
  let compacted =
    match options.checkpoint with
    | Some path
      when quarantined = [] && Shard.journal_ok journal && nshards > 0 -> (
        try Some (Shard.compact_journal path) with _ -> None)
    | _ -> None
  in
  {
    stream =
      {
        Confidence.shards = nshards;
        resumed_shards = Hashtbl.length resumed;
        quarantined;
        stream_trials = !stream_trials;
        stream_complete = !all_complete && quarantined = [];
        journal_ok = Shard.journal_ok journal;
      };
    workers_spawned;
    workers_lost = !workers_lost;
    reassigned = !reassigned;
    reconnects = !reconnects;
    leases_expired = !leases_expired;
    late_drops = !late_drops;
    fallback_shards = !fallback_shards;
    compacted;
  }
