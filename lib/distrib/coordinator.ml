open Pqdb_numeric
module Shard = Pqdb_montecarlo.Shard
module Confidence = Pqdb_montecarlo.Confidence
module Budget = Pqdb_montecarlo.Budget
module Faultpoint = Pqdb_runtime.Faultpoint
module Pqdb_error = Pqdb_runtime.Pqdb_error

type transport = {
  send : Protocol.msg -> unit;
  recv : unit -> Protocol.msg option;
  pid : int option;
  close : unit -> unit;
}

let channel_transport ?pid ~close input output =
  {
    send = (fun m -> Protocol.write output m);
    recv = (fun () -> Protocol.read input);
    pid;
    close;
  }

(* Coordinator-side transports speak frames directly over the pipe fds
   ({!Protocol.read_fd}/{!Protocol.write_fd}) so [io_timeout_s] can bound
   every send and recv with [select] — a worker that wedges mid-frame (or a
   full pipe nobody drains) surfaces as a typed [Timeout] in the reader
   thread, which the event loop treats like any other lost worker.  With no
   timeout the behavior is the old blocking one.  The worker keeps its
   buffered stdin/stdout channels: a dead coordinator is an EOF there, and
   heartbeats cover the idle-but-alive case. *)
let fd_transport ?io_timeout_s ?pid ~close ~in_fd ~out_fd () =
  {
    send = (fun m -> Protocol.write_fd ?timeout_s:io_timeout_s out_fd m);
    recv = (fun () -> Protocol.read_fd ?timeout_s:io_timeout_s in_fd);
    pid;
    close;
  }

let process_transport ?io_timeout_s argv =
  let to_child_r, to_child_w = Unix.pipe () in
  let from_child_r, from_child_w = Unix.pipe () in
  (* The parent-side ends must not leak into sibling workers: a sibling
     holding a dup of this worker's stdout write end would mask its EOF on
     death.  (create_process dup2s the child-side ends onto 0/1, which
     clears close-on-exec for the child itself.) *)
  List.iter Unix.set_close_on_exec [ to_child_w; from_child_r; to_child_r; from_child_w ];
  let pid = Unix.create_process argv.(0) argv to_child_r from_child_w Unix.stderr in
  Unix.close to_child_r;
  Unix.close from_child_w;
  let close () =
    (try Unix.close to_child_w with Unix.Unix_error _ -> ());
    try Unix.close from_child_r with Unix.Unix_error _ -> ()
  in
  fd_transport ?io_timeout_s ~pid ~close ~in_fd:from_child_r ~out_fd:to_child_w ()

let thread_transport ?io_timeout_s serve =
  let to_w_r, to_w_w = Unix.pipe () in
  let from_w_r, from_w_w = Unix.pipe () in
  let w_in = Unix.in_channel_of_descr to_w_r in
  let w_out = Unix.out_channel_of_descr from_w_w in
  let th =
    Thread.create
      (fun () ->
        (try serve ~input:w_in ~output:w_out with _ -> ());
        (try close_out w_out with _ -> ());
        try close_in w_in with _ -> ())
      ()
  in
  let close () =
    (* Closing the order pipe EOFs the worker loop; join before closing
       our read side so the worker is never writing into a closed pipe. *)
    (try Unix.close to_w_w with Unix.Unix_error _ -> ());
    (try Thread.join th with _ -> ());
    try Unix.close from_w_r with Unix.Unix_error _ -> ()
  in
  fd_transport ?io_timeout_s ~close ~in_fd:from_w_r ~out_fd:to_w_w ()

type summary = {
  stream : Confidence.stream_summary;
  workers_spawned : int;
  workers_lost : int;
  reassigned : int;
  fallback_shards : int;
  compacted : (int * int) option;
}

type wstate = Starting | Idle | Busy of int | Dead

type worker = {
  id : int;
  tr : transport;
  mutable state : wstate;
  mutable last_seen : float;
}

type event = Msg of Protocol.msg | Gone

let sum_trials = Array.fold_left ( + ) 0

let run ?budget ?nworkers ?compile_fuel
    ?(options = Confidence.default_stream_options)
    ?(heartbeat_timeout_s = 30.) ?source ~workers:nw ~spawn rng w clause_sets
    ~eps ~delta ~emit =
  if eps <= 0. || delta <= 0. then invalid_arg "Coordinator.run";
  if nw < 1 then invalid_arg "Coordinator.run: workers must be >= 1";
  if options.Confidence.shard_cost < 1 then
    invalid_arg "Coordinator.run: shard_cost must be >= 1";
  if options.retries < 0 then
    invalid_arg "Coordinator.run: retries must be >= 0";
  if options.resume && options.checkpoint = None then
    invalid_arg "Coordinator.run: resume requires a checkpoint journal";
  if heartbeat_timeout_s <= 0. then
    invalid_arg "Coordinator.run: heartbeat_timeout_s must be positive";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let n = Array.length clause_sets in
  let plan =
    Shard.plan ~eps ~delta ~max_cost:options.shard_cost clause_sets
  in
  let nshards = Array.length plan in
  let probe = Worker.probe_of rng in
  let lanes = if n = 0 then [||] else Rng.split_n rng n in
  let meta =
    Shard.meta_payload ~n ~eps ~delta ~fuel:compile_fuel
      ~shard_cost:options.shard_cost
  in
  let journal, resumed =
    match options.checkpoint with
    | None -> (Shard.null_journal (), Hashtbl.create 1)
    | Some path ->
        Shard.open_journal ~retries:options.retries ~resume:options.resume
          ~meta ~plan ~clause_sets path
  in
  let fps = Array.map (fun sh -> Shard.fingerprint clause_sets sh) plan in
  (* Every resolved shard lands here (resumed, worker, fallback or
     quarantined); emission walks the plan in order over it. *)
  let results : (int, Shard.outcome) Hashtbl.t = Hashtbl.create (max 1 nshards) in
  Hashtbl.iter (fun i o -> Hashtbl.replace results i o) resumed;
  (match budget with
  | None -> ()
  | Some b ->
      Hashtbl.iter
        (fun _ (o : Shard.outcome) -> Budget.spend b (sum_trials o.trials))
        resumed);
  (* Static budget slices: the remaining trial allowance dealt over the
     unresolved shards proportionally to a-priori cost, exactly
     ({!Budget.allocate}).  Unlike the sequential stream's re-split against
     live remainder, slices are fixed up front so a shard's allowance does
     not depend on which worker runs it or in what order — retries and
     reassignments replay the same slice. *)
  let todo =
    Array.to_list
      (Array.of_seq
         (Seq.filter
            (fun i -> not (Hashtbl.mem results i))
            (Seq.init nshards Fun.id)))
  in
  let trial_slices : (int, int) Hashtbl.t = Hashtbl.create 16 in
  (match budget with
  | Some b when Budget.remaining_trials b <> max_int ->
      let idx = Array.of_list todo in
      let costs = Array.map (fun i -> plan.(i).Shard.cost) idx in
      let shares = Budget.allocate ~trials:(Budget.remaining_trials b) ~costs in
      Array.iteri (fun k i -> Hashtbl.replace trial_slices i shares.(k)) idx
  | _ -> ());
  let slice_of i =
    match budget with
    | None -> (None, None)
    | Some b ->
        let trials =
          if Budget.cancelled b then Some 0 else Hashtbl.find_opt trial_slices i
        in
        (trials, Budget.remaining_deadline b)
  in
  (* Pending queue: LPT — deal the heaviest shards first so the tail of the
     run is small shards that balance across workers. *)
  let pending =
    ref
      (List.sort
         (fun a b ->
           match compare plan.(b).Shard.cost plan.(a).Shard.cost with
           | 0 -> compare a b
           | c -> c)
         todo)
  in
  let failures : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  let workers_lost = ref 0 in
  let reassigned = ref 0 in
  let fallback_shards = ref 0 in
  let quarantined = ref [] in
  let events : (int * event) Queue.t = Queue.create () in
  let elock = Mutex.create () in
  let push ev = Mutex.protect elock (fun () -> Queue.add ev events) in
  let drain () =
    Mutex.protect elock (fun () ->
        let l = List.of_seq (Queue.to_seq events) in
        Queue.clear events;
        l)
  in
  let fleet =
    List.filter_map
      (fun id ->
        match
          Faultpoint.fire "distrib.spawn";
          spawn id
        with
        | tr ->
            let wk = { id; tr; state = Starting; last_seen = Unix.gettimeofday () } in
            let _reader : Thread.t =
              Thread.create
                (fun () ->
                  let rec rloop () =
                    match tr.recv () with
                    | Some m ->
                        push (id, Msg m);
                        rloop ()
                    | None -> push (id, Gone)
                    | exception _ -> push (id, Gone)
                  in
                  rloop ())
                ()
            in
            (* Greeting: tells a bare worker process where the data lives
               ([source]) before it must reconstruct the run.  Workers with
               their own data arguments ignore it; a send failure just means
               the worker is already gone, which the reader will notice. *)
            (try wk.tr.send (Protocol.Hello { meta; probe; source })
             with _ -> ());
            Some wk
        | exception _ -> None)
      (List.init nw Fun.id)
  in
  let workers_spawned = List.length fleet in
  let find_worker id = List.find (fun wk -> wk.id = id) fleet in
  let live () = List.filter (fun wk -> wk.state <> Dead) fleet in
  let requeue i =
    (* Reassigned shards go back in cost order; a fresh attempt re-copies
       the shard's lane slice, so whoever picks it up reproduces the
       original stream bit for bit. *)
    pending :=
      List.sort
        (fun a b ->
          match compare plan.(b).Shard.cost plan.(a).Shard.cost with
          | 0 -> compare a b
          | c -> c)
        (i :: !pending)
  in
  let reap wk =
    match wk.tr.pid with
    | Some pid -> ( try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    | None -> ()
  in
  let bury wk =
    if wk.state <> Dead then begin
      (match wk.state with
      | Busy i ->
          incr reassigned;
          requeue i
      | _ -> ());
      wk.state <- Dead;
      incr workers_lost;
      wk.tr.close ();
      reap wk
    end
  in
  let kill wk =
    (match wk.tr.pid with
    | Some pid -> ( try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
    | None -> ());
    bury wk
  in
  let quarantine i err =
    let e =
      Pqdb_error.Error
        (Pqdb_error.Task_failure { index = i; inner = Failure err })
    in
    let o =
      Confidence.apriori_outcome ?compile_fuel w clause_sets plan.(i)
        ~fp:fps.(i) ~error:e
    in
    quarantined := (i, Option.get o.Shard.quarantined) :: !quarantined;
    Hashtbl.replace results i o
  in
  let record_outcome (o : Shard.outcome) =
    (match budget with
    | Some b -> Budget.spend b (sum_trials o.trials)
    | None -> ());
    (match o.quarantined with
    | Some _ -> ()
    | None -> Shard.journal_append journal (Shard.to_payload o));
    Hashtbl.replace results o.shard.Shard.index o
  in
  let shard_failed wid i detail =
    (* One entry per failed attempt (worker ids, duplicates kept): the
       quarantine cap is total attempts — mirroring the sequential stream's
       retry budget — while assignment preference (below) spreads the
       retries over distinct workers whenever the fleet allows it. *)
    let attempts = wid :: Option.value ~default:[] (Hashtbl.find_opt failures i) in
    Hashtbl.replace failures i attempts;
    if List.length attempts > options.retries then quarantine i detail
    else requeue i
  in
  let handle_msg wk msg =
    wk.last_seen <- Unix.gettimeofday ();
    match (wk.state, msg) with
    | Starting, Protocol.Hello { meta = m; probe = p; source = _ } ->
        if String.equal m meta && String.equal p probe then wk.state <- Idle
        else begin
          (* Well-formed but wrong run: the worker would compute plausible
             garbage.  Refuse it at the door. *)
          (try wk.tr.send Protocol.Shutdown with _ -> ());
          kill wk
        end
    | _, Protocol.Heartbeat -> ()
    | Busy i, Protocol.Outcome { payload } -> (
        match
          Shard.of_payload ~resumed:false
            ~source:(Printf.sprintf "worker-%d" wk.id)
            ~record:i payload
        with
        | o
          when o.Shard.shard = plan.(i) && String.equal o.Shard.fp fps.(i)
               && o.Shard.quarantined = None ->
            wk.state <- Idle;
            record_outcome o
        | _ | (exception Pqdb_error.Error (Pqdb_error.Malformed_input _)) ->
            (* A worker answering with the wrong shard, a drifted
               fingerprint or a torn record is not trustworthy for further
               orders either. *)
            kill wk)
    | Busy i, Protocol.Failed { index; detail } when index = i ->
        wk.state <- Idle;
        shard_failed wk.id i detail
    | _, Protocol.Shutdown -> bury wk
    | _, (Protocol.Hello _ | Protocol.Order _ | Protocol.Outcome _
         | Protocol.Failed _ | Protocol.Query _ | Protocol.Reply _) ->
        (* Out-of-protocol traffic: treat like corruption. *)
        kill wk
  in
  let assign wk i =
    let trials, deadline_s = slice_of i in
    match
      wk.tr.send (Protocol.Order { index = i; fp = fps.(i); trials; deadline_s })
    with
    | () -> wk.state <- Busy i
    | exception _ ->
        requeue i;
        bury wk
  in
  (* In-process fallback: with every worker gone the coordinator degrades
     to the sequential stream's own retry/quarantine loop over whatever is
     left — same solve, same slices, same outcomes. *)
  let solve_local i =
    let sh = plan.(i) in
    let budget_for_attempt () =
      let trials, deadline_s = slice_of i in
      Worker.budget_of_slice ~trials ~deadline_s
    in
    let rec go attempt =
      match
        Confidence.solve_shard ?budget:(budget_for_attempt ()) ?nworkers
          ?compile_fuel ~lanes w clause_sets sh ~fp:fps.(i) ~eps ~delta
      with
      | o -> record_outcome o
      | exception e ->
          if attempt >= options.retries then
            let detail =
              match e with
              | Pqdb_error.Error t -> Pqdb_error.to_string t
              | e -> Printexc.to_string e
            in
            quarantine i detail
          else begin
            Unix.sleepf (Shard.backoff_s ~attempt:(attempt + 1));
            go (attempt + 1)
          end
    in
    incr fallback_shards;
    go 0
  in
  let cursor = ref 0 in
  let emit_ready () =
    while
      !cursor < nshards
      &&
      match Hashtbl.find_opt results !cursor with
      | Some o ->
          emit o;
          incr cursor;
          true
      | None -> false
    do
      ()
    done
  in
  let unresolved () = Hashtbl.length results < nshards in
  (try
     while unresolved () do
       let evs = drain () in
       List.iter
         (fun (id, ev) ->
           let wk = find_worker id in
           match ev with
           | Msg m -> if wk.state <> Dead then handle_msg wk m
           | Gone -> bury wk)
         evs;
       (* Heartbeat watchdog — only for real processes; an in-thread worker
          cannot be killed, only joined. *)
       let now = Unix.gettimeofday () in
       List.iter
         (fun wk ->
           if wk.tr.pid <> None && now -. wk.last_seen > heartbeat_timeout_s
           then kill wk)
         (live ());
       let idle =
         List.filter (fun wk -> wk.state = Idle) (live ())
       in
       List.iter
         (fun wk ->
           (* Prefer a shard this worker has not already failed, so retries
              land on distinct workers when the fleet allows; fall back to
              the head rather than stall when it does not. *)
           let fresh i =
             match Hashtbl.find_opt failures i with
             | Some ws -> not (List.mem wk.id ws)
             | None -> true
           in
           let picked =
             match List.find_opt fresh !pending with
             | Some i -> Some i
             | None -> ( match !pending with [] -> None | i :: _ -> Some i)
           in
           match picked with
           | None -> ()
           | Some i ->
               pending := List.filter (fun j -> j <> i) !pending;
               assign wk i)
         idle;
       if live () = [] then
         (* All workers down (or none ever came up): finish in-process.
            Shards still marked in-flight were requeued by [bury]. *)
         while unresolved () do
           match !pending with
           | i :: rest ->
               pending := rest;
               solve_local i;
               emit_ready ()
           | [] -> assert false
         done
       else begin
         emit_ready ();
         (* Poll only when this round was quiet; a round that consumed
            events or dealt work re-checks immediately. *)
         if unresolved () && evs = [] then Thread.delay 0.005
       end
     done;
     emit_ready ()
   with e ->
     List.iter (fun wk -> kill wk) (live ());
     Shard.close_journal journal;
     raise e);
  List.iter
    (fun wk ->
      (try wk.tr.send Protocol.Shutdown with _ -> ());
      wk.state <- Dead;
      wk.tr.close ();
      reap wk)
    (live ());
  Shard.close_journal journal;
  let quarantined =
    List.sort (fun (a, _) (b, _) -> compare a b) !quarantined
  in
  let stream_trials = ref 0 in
  let all_complete = ref true in
  Hashtbl.iter
    (fun _ (o : Shard.outcome) ->
      stream_trials := !stream_trials + sum_trials o.trials;
      if not o.complete then all_complete := false)
    results;
  let compacted =
    match options.checkpoint with
    | Some path
      when quarantined = [] && Shard.journal_ok journal && nshards > 0 -> (
        try Some (Shard.compact_journal path) with _ -> None)
    | _ -> None
  in
  {
    stream =
      {
        Confidence.shards = nshards;
        resumed_shards = Hashtbl.length resumed;
        quarantined;
        stream_trials = !stream_trials;
        stream_complete = !all_complete && quarantined = [];
        journal_ok = Shard.journal_ok journal;
      };
    workers_spawned;
    workers_lost = !workers_lost;
    reassigned = !reassigned;
    fallback_shards = !fallback_shards;
    compacted;
  }
