module Faultpoint = Pqdb_runtime.Faultpoint
module Pqdb_error = Pqdb_runtime.Pqdb_error
module Checkpoint = Pqdb_runtime.Checkpoint

type msg =
  | Hello of {
      meta : string;
      probe : string;
      source : (string * string) option;
    }
  | Order of {
      index : int;
      epoch : int;
      fp : string;
      trials : int option;
      deadline_s : float option;
    }
  | Outcome of { index : int; epoch : int; payload : string }
  | Failed of { index : int; epoch : int; detail : string }
  | Lease of { ttl_s : float }
  | Heartbeat
  | Shutdown
  | Query of { id : int; spec : string }
  | Reply of { id : int; ok : bool; body : string }

(* One-line payloads; the frame supplies length and CRC.  Free-text fields
   (meta, shard payloads, failure details) go last so embedded spaces
   survive; newlines are the only byte the framing reserves, and the only
   free-text producer that could carry one (an exception printer) is
   escaped. *)

let escape s =
  if not (String.contains s '\n') then s
  else
    String.concat "\\n" (String.split_on_char '\n' s)

(* Source fields (a database path + relation name) sit in the middle of the
   hello payload, so they are percent-encoded: '%', space and newline are
   the only bytes that could confuse the space-separated payload or the
   line framing.  "-" marks an absent field ("%2d" is a literal dash). *)
let pct_encode s =
  if s = "" || s = "-" then (if s = "" then "%00" else "%2d")
  else if
    String.for_all (fun c -> c <> '%' && c <> ' ' && c <> '\n') s
  then s
  else
    String.concat ""
      (List.map
         (fun c ->
           match c with
           | '%' -> "%25"
           | ' ' -> "%20"
           | '\n' -> "%0a"
           | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))

let pct_decode ~badf s =
  if s = "%00" then ""
  else if not (String.contains s '%') then s
  else begin
    let b = Buffer.create (String.length s) in
    let i = ref 0 in
    while !i < String.length s do
      (if s.[!i] <> '%' then Buffer.add_char b s.[!i]
       else if !i + 2 >= String.length s then badf "truncated %-escape"
       else begin
         (match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
         | Some code -> Buffer.add_char b (Char.chr (code land 0xFF))
         | None -> badf (Printf.sprintf "bad %%-escape in %S" s));
         i := !i + 2
       end);
      incr i
    done;
    Buffer.contents b
  end

let source_fields = function
  | None -> "- -"
  | Some (db, rel) ->
      Printf.sprintf "%s %s" (pct_encode db) (pct_encode rel)

let payload_of = function
  | Hello { meta; probe; source } ->
      Printf.sprintf "hello %s %s %s" probe (source_fields source) meta
  | Order { index; epoch; fp; trials; deadline_s } ->
      Printf.sprintf "order %d %d %s %s %s" index epoch fp
        (match trials with None -> "-" | Some t -> string_of_int t)
        (match deadline_s with None -> "-" | Some d -> Printf.sprintf "%h" d)
  | Outcome { index; epoch; payload } ->
      Printf.sprintf "outcome %d %d %s" index epoch payload
  | Failed { index; epoch; detail } ->
      Printf.sprintf "failed %d %d %s" index epoch (escape detail)
  | Lease { ttl_s } -> Printf.sprintf "lease %h" ttl_s
  | Heartbeat -> "hb"
  | Shutdown -> "bye"
  (* Serve-layer frames.  Spec and body are free text (the body typically
     multi-line), so both travel percent-encoded: the payload stays a
     single space-separated line and decodes byte-exactly. *)
  | Query { id; spec } -> Printf.sprintf "query %d %s" id (pct_encode spec)
  | Reply { id; ok; body } ->
      Printf.sprintf "reply %d %s %s" id
        (if ok then "ok" else "err")
        (pct_encode body)

let bad detail = Pqdb_error.malformed ~source:"distrib-protocol" detail

let split_first s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let int_field what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> bad (Printf.sprintf "%s field %S is not an integer" what s)

let epoch_field what s =
  let e = int_field (what ^ " epoch") s in
  if e < 0 then bad (Printf.sprintf "%s epoch must be non-negative" what);
  e

let msg_of_payload payload =
  let tag, rest = split_first payload in
  match tag with
  | "hello" ->
      let probe, rest = split_first rest in
      let db, rest = split_first rest in
      let rel, meta = split_first rest in
      if probe = "" || db = "" || rel = "" then
        bad "hello frame missing probe or source fields";
      let source =
        match (db, rel) with
        | "-", "-" -> None
        | "-", _ | _, "-" -> bad "hello frame with a half-specified source"
        | db, rel -> Some (pct_decode ~badf:bad db, pct_decode ~badf:bad rel)
      in
      Hello { meta; probe; source }
  | "order" -> (
      match String.split_on_char ' ' rest with
      | [ index; epoch; fp; trials; deadline ] ->
          let trials =
            if trials = "-" then None else Some (int_field "order trials" trials)
          in
          let deadline_s =
            if deadline = "-" then None
            else
              match float_of_string_opt deadline with
              | Some d -> Some d
              | None -> bad (Printf.sprintf "order deadline %S is not a float" deadline)
          in
          (match trials with
          | Some t when t < 0 -> bad "order trials must be non-negative"
          | _ -> ());
          Order
            {
              index = int_field "order index" index;
              epoch = epoch_field "order" epoch;
              fp;
              trials;
              deadline_s;
            }
      | _ -> bad (Printf.sprintf "order frame has wrong arity: %S" rest))
  | "outcome" ->
      let index, rest = split_first rest in
      let epoch, payload = split_first rest in
      Outcome
        {
          index = int_field "outcome index" index;
          epoch = epoch_field "outcome" epoch;
          payload;
        }
  | "failed" ->
      let index, rest = split_first rest in
      let epoch, detail = split_first rest in
      Failed
        {
          index = int_field "failed index" index;
          epoch = epoch_field "failed" epoch;
          detail;
        }
  | "lease" -> (
      match float_of_string_opt rest with
      | Some t when t > 0. && Float.is_finite t -> Lease { ttl_s = t }
      | _ -> bad (Printf.sprintf "lease ttl %S is not a positive float" rest))
  | "hb" -> Heartbeat
  | "bye" -> Shutdown
  | "query" ->
      let id, spec = split_first rest in
      if spec = "" then bad "query frame missing spec";
      Query { id = int_field "query id" id; spec = pct_decode ~badf:bad spec }
  | "reply" -> (
      let id, rest = split_first rest in
      let status, body = split_first rest in
      match status with
      | "ok" | "err" ->
          if body = "" then bad "reply frame missing body";
          Reply
            {
              id = int_field "reply id" id;
              ok = status = "ok";
              body = pct_decode ~badf:bad body;
            }
      | s -> bad (Printf.sprintf "reply status must be ok|err, got %S" s))
  | _ -> bad (Printf.sprintf "unknown frame tag %S" tag)

(* Frame: "f <8-hex payload length> <8-hex CRC-32 of payload> <payload>\n".
   Fixed-width header so the reader can consume it with exact-length reads
   and tell a clean EOF (nothing after a frame boundary) from a torn one. *)

let encode msg =
  let payload = payload_of msg in
  Printf.sprintf "f %08x %s %s\n" (String.length payload)
    (Checkpoint.crc32_hex payload) payload

let header_len = 20 (* "f " + 8 hex + " " + 8 hex + " " *)

let decode_frame ~header ~payload =
  if String.length header <> header_len
     || header.[0] <> 'f' || header.[1] <> ' '
     || header.[10] <> ' ' || header.[19] <> ' '
  then bad "corrupt frame header";
  let crc = String.sub header 11 8 in
  if not (String.equal crc (Checkpoint.crc32_hex payload)) then
    bad "frame CRC mismatch";
  msg_of_payload payload

let decode_header_len header =
  if String.length header <> header_len || header.[0] <> 'f' || header.[1] <> ' '
  then bad "corrupt frame header";
  match int_of_string_opt ("0x" ^ String.sub header 2 8) with
  | Some n when n >= 0 -> n
  | _ -> bad "corrupt frame length"

(* Behavioral send faults.  [Torn] is implemented here — the peer sees a
   truncated frame (which its reader surfaces as the usual typed
   [Malformed_input]) and the sender dies with [Injected], exactly like a
   crash mid-write.  Other modes delegate to [Faultpoint.act]. *)
let send_fault emit =
  match Faultpoint.check "distrib.send" with
  | None -> ()
  | Some Faultpoint.Torn ->
      emit ();
      Pqdb_error.error (Pqdb_error.Injected "distrib.send")
  | Some m -> Faultpoint.act "distrib.send" m

let torn_prefix frame = String.sub frame 0 (max 1 (String.length frame / 2))

let write oc msg =
  let frame = encode msg in
  send_fault (fun () ->
      output_string oc (torn_prefix frame);
      flush oc);
  output_string oc frame;
  flush oc

let read ic =
  Faultpoint.fire "distrib.recv";
  (* Clean EOF only at a frame boundary: reading even one byte of a header
     commits us to a whole frame. *)
  match input_char ic with
  | exception End_of_file -> None
  | c0 ->
      let rest =
        match really_input_string ic (header_len - 1) with
        | r -> r
        | exception End_of_file -> bad "truncated frame header"
      in
      let header = String.make 1 c0 ^ rest in
      let len = decode_header_len header in
      let payload =
        match really_input_string ic len with
        | p -> p
        | exception End_of_file -> bad "truncated frame payload"
      in
      (match input_char ic with
      | '\n' -> ()
      | _ -> bad "frame missing terminator"
      | exception End_of_file -> bad "truncated frame terminator");
      Some (decode_frame ~header ~payload)

(* Raw-fd transport with select-based deadlines.

   Buffered channels make deadlines unreliable (bytes can sit in the
   channel's buffer where [select] cannot see them), so the serve daemon,
   its client and the coordinator's transports speak frames directly over
   the file descriptor: exact-length reads, each byte guarded by [select]
   against the one deadline set when the call started.  Works on sockets
   and pipes alike — pipes do not honor [SO_RCVTIMEO], which is why this
   is select-based.  No buffering state means an fd can be handed between
   these functions freely. *)

type deadline = float option (* absolute, Unix.gettimeofday scale *)

let deadline_of timeout_s : deadline =
  Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s

let wait_io ~site ~(deadline : deadline) ~for_read fd =
  match deadline with
  | None -> ()
  | Some d ->
      let rec go () =
        let remaining = d -. Unix.gettimeofday () in
        if remaining <= 0. then
          Pqdb_error.error
            (Pqdb_error.Timeout { site; seconds = remaining })
        else
          let r, w = if for_read then ([ fd ], []) else ([], [ fd ]) in
          match Unix.select r w [] remaining with
          | [], [], _ -> go ()
          | _ -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      in
      go ()

(* One [Timeout] per call carries the caller's timeout, not the residue. *)
let timeout_err ~site timeout_s =
  Pqdb_error.error
    (Pqdb_error.Timeout
       { site; seconds = (match timeout_s with Some s -> s | None -> 0.) })

let read_exact ~site ~timeout_s ~deadline fd buf off len =
  let rec go off len =
    if len > 0 then begin
      (try wait_io ~site ~deadline ~for_read:true fd
       with Pqdb_error.Error (Pqdb_error.Timeout _) ->
         timeout_err ~site timeout_s);
      match Unix.read fd buf off len with
      | 0 -> raise End_of_file
      | n -> go (off + n) (len - n)
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) ->
          go off len
    end
  in
  go off len

let write_all ~site ~timeout_s ~deadline fd s =
  let buf = Bytes.of_string s in
  let rec go off len =
    if len > 0 then begin
      (try wait_io ~site ~deadline ~for_read:false fd
       with Pqdb_error.Error (Pqdb_error.Timeout _) ->
         timeout_err ~site timeout_s);
      match Unix.write fd buf off len with
      | n -> go (off + n) (len - n)
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) ->
          go off len
    end
  in
  go 0 (Bytes.length buf)

let write_fd ?timeout_s fd msg =
  let site = "distrib.send" in
  let deadline = deadline_of timeout_s in
  let frame = encode msg in
  send_fault (fun () ->
      write_all ~site ~timeout_s ~deadline fd (torn_prefix frame));
  write_all ~site ~timeout_s ~deadline fd frame

let read_fd_rest ~site ~timeout_s ~deadline fd header =
  (try read_exact ~site ~timeout_s ~deadline fd header 1 (header_len - 1)
   with End_of_file -> bad "truncated frame header");
  let header = Bytes.to_string header in
  let len = decode_header_len header in
  let payload = Bytes.create (len + 1) in
  (try read_exact ~site ~timeout_s ~deadline fd payload 0 (len + 1)
   with End_of_file -> bad "truncated frame payload");
  if Bytes.get payload len <> '\n' then bad "frame missing terminator";
  Some (decode_frame ~header ~payload:(Bytes.sub_string payload 0 len))

let read_fd ?timeout_s fd =
  let site = "distrib.recv" in
  Faultpoint.fire site;
  let deadline = deadline_of timeout_s in
  let header = Bytes.create header_len in
  (* Clean EOF only before the first header byte; after that a whole frame
     is owed, and EOF or an expired deadline mid-frame is a fault. *)
  match read_exact ~site ~timeout_s ~deadline fd header 0 1 with
  | exception End_of_file -> None
  | () -> read_fd_rest ~site ~timeout_s ~deadline fd header

(* Frame-boundary patience, mid-frame deadline.  A peer that is merely
   quiet (an idle worker waiting for its next order) is normal and may stay
   quiet forever; a peer that starts a frame and stops — a torn write, a
   crash mid-frame — must not wedge the reader.  So the wait for the first
   header byte is unbounded, and [timeout_s] starts once it arrives. *)
let read_fd_frame ?timeout_s fd =
  let site = "distrib.recv" in
  Faultpoint.fire site;
  let header = Bytes.create header_len in
  match
    read_exact ~site ~timeout_s:None ~deadline:None fd header 0 1
  with
  | exception End_of_file -> None
  | () ->
      read_fd_rest ~site ~timeout_s ~deadline:(deadline_of timeout_s) fd
        header

(* Network fault wrappers for the remote-worker path.  Three sites model
   the failure modes a TCP link adds over a pipe to a child process:

   - ["distrib.tcp.drop"]: the connection dies under us — the socket is
     shut down (so the peer sees EOF/RST, exactly like a yanked cable)
     and the caller gets [Injected].
   - ["distrib.tcp.stall"]: a half-open link — armed [stall] blocks the
     I/O until the registry releases it (bounded by the stall cap), long
     enough for a lease to expire while the socket still "looks" alive.
   - ["distrib.tcp.dup"]: the frame is delivered twice — models a
     retransmit-after-timeout duplication; receivers must be idempotent.

   The wrappers compose with the plain ["distrib.send"]/["distrib.recv"]
   sites, which still fire inside the underlying calls. *)

let tcp_fault fd =
  if Faultpoint.should_fail "distrib.tcp.drop" then begin
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    Pqdb_error.error (Pqdb_error.Injected "distrib.tcp.drop")
  end;
  Faultpoint.fire "distrib.tcp.stall"

let tcp_write_fd ?timeout_s fd msg =
  tcp_fault fd;
  if Faultpoint.check "distrib.tcp.dup" <> None then
    write_fd ?timeout_s fd msg;
  write_fd ?timeout_s fd msg

let tcp_read_fd ?timeout_s fd =
  tcp_fault fd;
  read_fd ?timeout_s fd

let tcp_read_fd_frame ?timeout_s fd =
  tcp_fault fd;
  read_fd_frame ?timeout_s fd
