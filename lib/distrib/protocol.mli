(** Wire protocol between the distributed coordinator and its workers.

    One message per line: a fixed-width header carrying the payload length
    and a CRC-32 of the payload, then the payload itself ({!Pqdb_montecarlo.Shard}
    outcome records ride inside verbatim, so their ["%h"] floats stay
    bit-exact end to end).  The framing makes worker death legible: a clean
    EOF at a frame boundary decodes to [None], while a torn header, a short
    payload, a missing terminator or a CRC mismatch all raise the same typed
    [Malformed_input] the checkpoint journal uses — a coordinator never has
    to guess whether a half-written frame was meaningful.

    Reads and writes fire the ["distrib.recv"] / ["distrib.send"] fault
    points ({!Pqdb_runtime.Faultpoint}), so CI can drive the coordinator
    down its worker-loss paths without actually killing processes. *)

type msg =
  | Hello of {
      meta : string;
      probe : string;
      source : (string * string) option;
    }
      (** Handshake, both directions.  Worker → coordinator: the
          {!Pqdb_montecarlo.Shard.meta_payload} of the run it reconstructed,
          plus an RNG probe (a ["%h"] draw from a copy of its batch seed).
          The coordinator compares both against its own for literal
          equality — a worker whose parameters or seed drifted would
          compute well-formed but wrong shards, so it is refused at
          handshake instead.  Coordinator → worker (sent first, on spawn):
          the same fields, with [source = Some (db_path, relation)] when
          the run reads a stored database — a worker spawned without data
          arguments loads that path (one read-only [.udbb] mapping shared
          by the whole fleet via the page cache) instead of regenerating
          from a [--gen] seed.  Source fields are percent-encoded on the
          wire; [None] marks a synthetic-workload run. *)
  | Order of {
      index : int;
      epoch : int;
      fp : string;
      trials : int option;
      deadline_s : float option;
    }
      (** Coordinator → worker: solve shard [index].  [epoch] stamps the
          lease under which the order was issued — a fresh epoch is drawn
          every time a shard is (re)assigned, so an outcome arriving after
          its lease was superseded is recognizable as late rather than
          wrong.  [fp] is the data fingerprint the worker must re-derive
          from its own clause sets; [trials]/[deadline_s] are the shard's
          budget slice ([None] = unlimited — the bit-identical no-budget
          path). *)
  | Outcome of { index : int; epoch : int; payload : string }
      (** Worker → coordinator: a completed shard's
          {!Pqdb_montecarlo.Shard.to_payload} record, bit-exact, echoing
          the [index]/[epoch] of the order that requested it so ingestion
          can dedup duplicated or superseded deliveries (first-wins). *)
  | Failed of { index : int; epoch : int; detail : string }
      (** Worker → coordinator: shard [index] (under lease [epoch]) raised;
          the worker survives and can take further orders.  [detail] is
          the rendered error. *)
  | Lease of { ttl_s : float }
      (** Coordinator → worker, granted at admission: the liveness lease.
          A worker must be heard from (heartbeat or any frame) within
          every [ttl_s] window or the coordinator treats its lease as
          expired and its in-flight shard as reassignable — even if the
          socket still looks open (half-open links).  A worker whose
          heartbeat interval cannot renew the lease in time clamps it
          down and warns. *)
  | Heartbeat  (** Worker liveness tick (also sent during long solves). *)
  | Shutdown  (** Coordinator → worker: drain and exit cleanly. *)
  | Query of { id : int; spec : string }
      (** Client → serve daemon: run the query described by [spec] (the
          {!Pqdb_serve} request language, e.g. ["conf R eps=0.05"]).  [id]
          is echoed on the reply so a client can pipeline requests.  The
          spec is percent-encoded on the wire. *)
  | Reply of { id : int; ok : bool; body : string }
      (** Serve daemon → client: the outcome of [Query] [id].  [ok] means
          the query ran; [body] is its (possibly multi-line, ["%h"]-exact)
          output, or the rendered error when [not ok].  Percent-encoded on
          the wire, so the bytes survive the single-line framing. *)

val encode : msg -> string
(** The exact framed bytes {!write} emits (terminating newline included). *)

val write : out_channel -> msg -> unit
(** Frame, write and flush one message.  Fires ["distrib.send"] first.
    Write errors (e.g. [EPIPE] from a dead peer) propagate to the caller. *)

val read : in_channel -> msg option
(** Read one framed message; [None] on a clean EOF at a frame boundary.
    Fires ["distrib.recv"] first.
    @raise Pqdb_runtime.Pqdb_error.Error ([Malformed_input], source
    ["distrib-protocol"]) on a torn or corrupt frame: partial header or
    payload, bad length, CRC mismatch, unknown tag, or field syntax. *)

val write_fd : ?timeout_s:float -> Unix.file_descr -> msg -> unit
(** {!write} directly over a file descriptor (no channel buffering), with
    an optional whole-frame deadline enforced by [select] — works on pipes,
    which ignore [SO_SNDTIMEO]/[SO_RCVTIMEO].  Fires ["distrib.send"]; the
    [torn] mode emits half the frame and raises [Injected].
    @raise Pqdb_runtime.Pqdb_error.Error [(Timeout _)] when the deadline
    passes before the frame is fully written (site ["distrib.send"]). *)

val read_fd : ?timeout_s:float -> Unix.file_descr -> msg option
(** {!read} directly over a file descriptor, with an optional whole-frame
    deadline.  [None] on a clean EOF before the first header byte; EOF or
    deadline expiry mid-frame raise.  Fires ["distrib.recv"] first.
    @raise Pqdb_runtime.Pqdb_error.Error [(Timeout _)] (site
    ["distrib.recv"]) when the deadline passes, or [(Malformed_input _)] on
    a torn or corrupt frame. *)

val read_fd_frame : ?timeout_s:float -> Unix.file_descr -> msg option
(** {!read_fd} with frame-boundary patience: the wait for the first header
    byte is unbounded (an idle peer may stay quiet forever), and
    [timeout_s] bounds only the remainder of the frame once it starts.
    This is what a worker reads orders with — between orders it waits as
    long as the coordinator pleases, but a torn or wedged frame cannot
    leave it blocked forever (which would look like a live worker, since
    heartbeats run on their own thread).  Same failure surface as
    {!read_fd}. *)

(** {2 TCP fault wrappers}

    The remote-worker path speaks through these variants, which add three
    network fault sites in front of the plain fd I/O (whose own
    ["distrib.send"]/["distrib.recv"] sites still fire):
    ["distrib.tcp.drop"] shuts the socket down and raises [Injected] (a
    dropped connection — the peer sees EOF), ["distrib.tcp.stall"] acts
    its armed mode before the I/O (armed [stall] models a half-open link:
    the call blocks, bounded by the stall cap, while the socket looks
    alive), and ["distrib.tcp.dup"] makes {!tcp_write_fd} emit the frame
    twice (a duplicated delivery — receivers must be idempotent). *)

val tcp_write_fd : ?timeout_s:float -> Unix.file_descr -> msg -> unit
(** {!write_fd} behind the TCP fault sites; ["distrib.tcp.dup"] writes
    the frame twice. *)

val tcp_read_fd : ?timeout_s:float -> Unix.file_descr -> msg option
(** {!read_fd} behind the TCP fault sites. *)

val tcp_read_fd_frame : ?timeout_s:float -> Unix.file_descr -> msg option
(** {!read_fd_frame} behind the TCP fault sites. *)
