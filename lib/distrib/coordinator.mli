(** Distributed shard execution: a coordinator dealing the shard plan to
    worker processes over the checkpoint journal.

    The coordinator computes the same plan, per-tuple RNG lanes and journal
    state as {!Pqdb_montecarlo.Confidence.run_stream}, but instead of
    solving shards inline it deals them to [workers] spawned over
    {!transport}s, heaviest-first (LPT), and reconciles the answers:

    {ul
    {- {e Bit-identity}: workers recompute lanes from the same seed and copy
       each shard's lane slice fresh
       ({!Pqdb_montecarlo.Confidence.solve_shard}), so without a budget the
       emitted outcomes — and anything printed from them — are byte-for-byte
       those of the single-process stream, for any worker count, any
       completion order, and any crash/reassignment history.  [emit] is
       called in plan order regardless of completion order.}
    {- {e Fault tolerance}: worker death (EOF, I/O error, heartbeat
       timeout) requeues its in-flight shard for the survivors; a shard
       whose attempts exceed the retry budget (spread over distinct workers
       when the fleet allows) is quarantined with sound a-priori brackets,
       exactly like the sequential stream.  With every worker gone the
       coordinator finishes in-process — distribution can only add
       capacity, never lose results.}
    {- {e Journal compatibility}: completed shards are appended to the same
       {!Pqdb_runtime.Checkpoint} journal with the same records, so a run
       may be interrupted under one worker count and resumed under another
       (including one, i.e. plain [run_stream]) bit-identically.  On clean
       completion the journal is compacted in place
       ({!Pqdb_montecarlo.Shard.compact_journal}).}}

    Budgets are dealt as {e static} per-shard trial slices
    ({!Pqdb_montecarlo.Budget.allocate} over the unresolved shards'
    a-priori costs) so a slice does not depend on which worker runs the
    shard; this intentionally differs from the sequential stream's
    remaining-cost re-splitting, and budgeted runs are therefore
    deterministic per (budget, plan) but not byte-identical to the
    single-process stream.  Deadlines ride along as wall-clock remainders;
    cancellation turns any later order into an already-dead slice. *)

open Pqdb_numeric
open Pqdb_urel

type transport = {
  send : Protocol.msg -> unit;
  recv : unit -> Protocol.msg option;  (** blocking; [None] on clean EOF *)
  pid : int option;
      (** [Some pid] for a real process — enables SIGKILL on lease expiry
          and waitpid reaping; [None] for an in-process or remote
          transport. *)
  remote : bool;
      (** A network link rather than a local pipe: lease expiry suspends
          the worker (partition-tolerant — it may heal and rejoin) instead
          of killing it, and a lost connection is redialed
          ([max_reconnects]).  Set by {!tcp_transport}; false for the
          pipe-based constructors, whose silence means death, not
          partition. *)
  close : unit -> unit;  (** idempotent; must release both directions *)
}

val channel_transport :
  ?pid:int -> close:(unit -> unit) -> in_channel -> out_channel -> transport
(** Wrap an already-connected channel pair (orders out on the second,
    outcomes in on the first) — the building block behind the two
    constructors below, exposed for tests and embeddings that manage their
    own processes (e.g. a fork without exec). *)

val process_transport : ?io_timeout_s:float -> string array -> transport
(** Spawn [argv] ([argv.(0)] is the executable) with the order channel on
    its stdin and the outcome channel on its stdout (stderr passes
    through), close-on-exec on all parent-side ends so sibling workers
    cannot mask each other's EOF.  The standard transport behind
    [pqdb_cli batch --workers N].  [io_timeout_s] bounds every
    coordinator-side send/recv with a [select] deadline
    ({!Protocol.read_fd}): a worker wedged mid-frame surfaces as a typed
    [Timeout] and is treated as lost, instead of hanging its reader thread
    forever.  Pick it larger than the worker heartbeat interval (0.25 s),
    which bounds inter-frame silence from a healthy worker. *)

val thread_transport :
  ?io_timeout_s:float ->
  (input:in_channel -> output:out_channel -> unit) -> transport
(** Run a worker loop (typically {!Worker.serve} partially applied) on an
    in-process thread connected by pipes — same protocol, same framing, no
    fork.  Used by benchmarks and anywhere fork is unavailable; [close]
    joins the thread.  [io_timeout_s] as for {!process_transport}. *)

val tcp_transport :
  ?io_timeout_s:float -> ?retries:int -> ?retry_delay_s:float ->
  ?max_delay_s:float -> host:string -> port:int -> unit -> transport
(** Dial a remote {!Worker.listen} worker at [host:port]
    ({!Dial.connect}: up to [retries] extra attempts with capped jittered
    backoff — listeners may still be starting).  The transport is marked
    [remote] and its I/O goes through the {!Protocol} TCP fault wrappers,
    so ["distrib.tcp.drop"/"stall"/"dup"] inject network failures on this
    path; [io_timeout_s] as for {!process_transport} (recommended — an
    unbounded send to a half-open peer can block until the kernel buffers
    fill).  [close] shuts the socket down before closing so a reader
    blocked in [recv] wakes with EOF.
    @raise Invalid_argument on an unresolvable [host];
    [Unix.Unix_error] when the dial ultimately fails. *)

type summary = {
  stream : Pqdb_montecarlo.Confidence.stream_summary;
      (** The same accounting the sequential stream reports. *)
  workers_spawned : int;  (** transports successfully opened at start *)
  workers_lost : int;
      (** connections that died, timed out, were refused at handshake, or
          turned corrupt (a slot lost and redialed counts once per lost
          connection) *)
  reassigned : int;
      (** in-flight shards requeued off a lost or suspended worker *)
  reconnects : int;  (** lost remote slots successfully re-dialed *)
  leases_expired : int;
      (** remote workers suspended because their lease lapsed (the
          partition-tolerance path; process workers are killed instead) *)
  late_drops : int;
      (** duplicate or superseded deliveries dropped by first-wins
          ingestion — outcomes for already-resolved shards, duplicated
          frames, late failures from expired leases *)
  fallback_shards : int;  (** shards solved in-process, fleet gone *)
  compacted : (int * int) option;
      (** [(kept, dropped)] when the journal was auto-compacted on clean
          completion. *)
}

val run :
  ?budget:Pqdb_montecarlo.Budget.t -> ?nworkers:int -> ?compile_fuel:int ->
  ?options:Pqdb_montecarlo.Confidence.stream_options ->
  ?lease_ttl_s:float -> ?max_reconnects:int -> ?reconnect_delay_s:float ->
  ?source:string * string ->
  workers:int -> spawn:(int -> transport) ->
  Rng.t -> Wtable.t -> Assignment.t list array -> eps:float -> delta:float ->
  emit:(Pqdb_montecarlo.Shard.outcome -> unit) -> summary
(** Execute the batch over [workers] transports obtained from [spawn]
    (called with worker ids 0..workers−1; fires ["distrib.spawn"] per
    worker — a spawn that raises just shrinks the fleet).  Each worker is
    first sent a greeting [Hello] carrying this run's meta/probe and
    [source] — [(db_path, relation)] when the batch reads a stored
    database — so bare worker processes can load the database themselves
    (sharing one [.udbb] mapping through the page cache) instead of being
    re-told via argv or regenerating from a seed.  Workers are
    admitted only after a reply [Hello] matching this run's meta payload
    and RNG probe, and are then granted a [Lease] of [lease_ttl_s]
    (default 30 s); drifted workers are refused, counted lost, and never
    redialed.

    {e Lease-based liveness}: a worker not heard from within [lease_ttl_s]
    has an expired lease.  For a process worker that means SIGKILL; for a
    [remote] transport it means suspension — the in-flight shard is
    requeued (reassignable even though the socket still looks alive: the
    half-open case) and the worker rejoins the pool the moment it speaks
    again.  Every order carries a fresh lease {e epoch}; ingestion is
    idempotent and first-wins on (shard, epoch), so a late outcome from a
    superseded lease, or a duplicated frame, is detected and dropped
    ([late_drops]) — and since shard outcomes are bit-identical whoever
    computes them, first-wins keeps [emit]'s byte stream identical to the
    single-process one for {e any} fleet history.

    {e Reconnect-resume}: a lost [remote] connection is redialed — same
    spawn slot, hence same endpoint — with capped jittered backoff, up to
    [max_reconnects] (default 0) times per slot ([reconnect_delay_s],
    default 0.25 s, seeds the backoff); the fresh connection re-handshakes
    with the same drift-refusal probe before rejoining.  In-process
    fallback engages only when no active worker remains {e and} no redial
    is pending; suspended workers never delay it (a partition may never
    heal), their late deliveries being dedup'd as above.

    [options] carries the shard ceiling, retry budget and
    checkpoint/resume exactly as for [run_stream]; resumed shards are
    replayed from the journal without being dealt.  Exceptions from
    [emit] are not contained (workers are killed, the journal closed, and
    the exception re-raised).
    @raise Invalid_argument on bad (ε, δ), [workers < 1], bad [options],
    a non-positive [lease_ttl_s]/[reconnect_delay_s] or negative
    [max_reconnects].
    @raise Pqdb_runtime.Pqdb_error.Error on a corrupt or mismatched resume
    journal, as for [run_stream]. *)
