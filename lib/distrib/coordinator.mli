(** Distributed shard execution: a coordinator dealing the shard plan to
    worker processes over the checkpoint journal.

    The coordinator computes the same plan, per-tuple RNG lanes and journal
    state as {!Pqdb_montecarlo.Confidence.run_stream}, but instead of
    solving shards inline it deals them to [workers] spawned over
    {!transport}s, heaviest-first (LPT), and reconciles the answers:

    {ul
    {- {e Bit-identity}: workers recompute lanes from the same seed and copy
       each shard's lane slice fresh
       ({!Pqdb_montecarlo.Confidence.solve_shard}), so without a budget the
       emitted outcomes — and anything printed from them — are byte-for-byte
       those of the single-process stream, for any worker count, any
       completion order, and any crash/reassignment history.  [emit] is
       called in plan order regardless of completion order.}
    {- {e Fault tolerance}: worker death (EOF, I/O error, heartbeat
       timeout) requeues its in-flight shard for the survivors; a shard
       whose attempts exceed the retry budget (spread over distinct workers
       when the fleet allows) is quarantined with sound a-priori brackets,
       exactly like the sequential stream.  With every worker gone the
       coordinator finishes in-process — distribution can only add
       capacity, never lose results.}
    {- {e Journal compatibility}: completed shards are appended to the same
       {!Pqdb_runtime.Checkpoint} journal with the same records, so a run
       may be interrupted under one worker count and resumed under another
       (including one, i.e. plain [run_stream]) bit-identically.  On clean
       completion the journal is compacted in place
       ({!Pqdb_montecarlo.Shard.compact_journal}).}}

    Budgets are dealt as {e static} per-shard trial slices
    ({!Pqdb_montecarlo.Budget.allocate} over the unresolved shards'
    a-priori costs) so a slice does not depend on which worker runs the
    shard; this intentionally differs from the sequential stream's
    remaining-cost re-splitting, and budgeted runs are therefore
    deterministic per (budget, plan) but not byte-identical to the
    single-process stream.  Deadlines ride along as wall-clock remainders;
    cancellation turns any later order into an already-dead slice. *)

open Pqdb_numeric
open Pqdb_urel

type transport = {
  send : Protocol.msg -> unit;
  recv : unit -> Protocol.msg option;  (** blocking; [None] on clean EOF *)
  pid : int option;
      (** [Some pid] for a real process — enables SIGKILL on heartbeat
          timeout and waitpid reaping; [None] for an in-process transport
          (the watchdog leaves those alone). *)
  close : unit -> unit;  (** idempotent; must release both directions *)
}

val channel_transport :
  ?pid:int -> close:(unit -> unit) -> in_channel -> out_channel -> transport
(** Wrap an already-connected channel pair (orders out on the second,
    outcomes in on the first) — the building block behind the two
    constructors below, exposed for tests and embeddings that manage their
    own processes (e.g. a fork without exec). *)

val process_transport : ?io_timeout_s:float -> string array -> transport
(** Spawn [argv] ([argv.(0)] is the executable) with the order channel on
    its stdin and the outcome channel on its stdout (stderr passes
    through), close-on-exec on all parent-side ends so sibling workers
    cannot mask each other's EOF.  The standard transport behind
    [pqdb_cli batch --workers N].  [io_timeout_s] bounds every
    coordinator-side send/recv with a [select] deadline
    ({!Protocol.read_fd}): a worker wedged mid-frame surfaces as a typed
    [Timeout] and is treated as lost, instead of hanging its reader thread
    forever.  Pick it larger than the worker heartbeat interval (0.25 s),
    which bounds inter-frame silence from a healthy worker. *)

val thread_transport :
  ?io_timeout_s:float ->
  (input:in_channel -> output:out_channel -> unit) -> transport
(** Run a worker loop (typically {!Worker.serve} partially applied) on an
    in-process thread connected by pipes — same protocol, same framing, no
    fork.  Used by benchmarks and anywhere fork is unavailable; [close]
    joins the thread.  [io_timeout_s] as for {!process_transport}. *)

type summary = {
  stream : Pqdb_montecarlo.Confidence.stream_summary;
      (** The same accounting the sequential stream reports. *)
  workers_spawned : int;  (** transports successfully opened *)
  workers_lost : int;
      (** died, timed out, refused at handshake, or turned corrupt *)
  reassigned : int;  (** in-flight shards requeued off a lost worker *)
  fallback_shards : int;  (** shards solved in-process, fleet gone *)
  compacted : (int * int) option;
      (** [(kept, dropped)] when the journal was auto-compacted on clean
          completion. *)
}

val run :
  ?budget:Pqdb_montecarlo.Budget.t -> ?nworkers:int -> ?compile_fuel:int ->
  ?options:Pqdb_montecarlo.Confidence.stream_options ->
  ?heartbeat_timeout_s:float -> ?source:string * string ->
  workers:int -> spawn:(int -> transport) ->
  Rng.t -> Wtable.t -> Assignment.t list array -> eps:float -> delta:float ->
  emit:(Pqdb_montecarlo.Shard.outcome -> unit) -> summary
(** Execute the batch over [workers] transports obtained from [spawn]
    (called with worker ids 0..workers−1; fires ["distrib.spawn"] per
    worker — a spawn that raises just shrinks the fleet).  Each worker is
    first sent a greeting [Hello] carrying this run's meta/probe and
    [source] — [(db_path, relation)] when the batch reads a stored
    database — so bare worker processes can load the database themselves
    (sharing one [.udbb] mapping through the page cache) instead of being
    re-told via argv or regenerating from a seed.  Workers are
    admitted only after a reply [Hello] matching this run's meta payload
    and RNG probe; drifted workers are refused and counted lost.
    [heartbeat_timeout_s] (default 30) bounds silence from a live process
    worker before it is SIGKILLed.  [options] carries the shard ceiling,
    retry budget and checkpoint/resume exactly as for [run_stream];
    resumed shards are replayed from the journal without being dealt.
    Exceptions from [emit] are not contained (workers are killed, the
    journal closed, and the exception re-raised).
    @raise Invalid_argument on bad (ε, δ), [workers < 1], bad [options] or
    a non-positive timeout.
    @raise Pqdb_runtime.Pqdb_error.Error on a corrupt or mismatched resume
    journal, as for [run_stream]. *)
