module Protocol = Pqdb_distrib.Protocol
module Pqdb_error = Pqdb_runtime.Pqdb_error

type t = {
  fd : Unix.file_descr;
  greeting : string;
  mutable next_id : int;
  io_timeout_s : float option;
}

let sockaddr_of = function
  | Server.Unix_socket path -> Unix.ADDR_UNIX path
  | Server.Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let domain_of = function
  | Server.Unix_socket _ -> Unix.PF_UNIX
  | Server.Tcp _ -> Unix.PF_INET

(* The backoff law lives in {!Pqdb_distrib.Dial} now, shared with the
   coordinator's TCP transport and redial loop; this re-export keeps the
   serve-layer name (and its tests).  [salt] defaults to 0 — the
   historical attempt-only jitter — and {!connect} passes the
   per-connection (pid ⊕ fd) salt so a fleet of clients retrying together
   fans out instead of thundering in lockstep. *)
let backoff_delay_s ?salt ~retry_delay_s ~max_delay_s k =
  Pqdb_distrib.Dial.backoff_delay_s ?salt ~retry_delay_s ~max_delay_s k

let is_busy body =
  String.length body >= 5 && String.equal (String.sub body 0 5) "busy:"

(* Retries make `pqdb query` usable the moment the daemon is forked
   (ECONNREFUSED / ENOENT just mean the socket is not bound yet) and let a
   shed client wait out an overloaded daemon: a busy reply in place of the
   greeting also burns one retry, after backoff. *)
let connect ?(retries = 0) ?(retry_delay_s = 0.2) ?(max_delay_s = 2.0)
    ?io_timeout_s addr =
  (* A daemon that stops between our frames must surface as EPIPE, not
     SIGPIPE-kill the client. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let rec attempt k =
    let left = retries - k in
    let fd = Unix.socket ~cloexec:true (domain_of addr) Unix.SOCK_STREAM 0 in
    (* Salt read before [drop] — a closed fd's number may be reused. *)
    let salt = Pqdb_distrib.Dial.connection_salt fd in
    let retry e =
      if left > 0 then begin
        Unix.sleepf (backoff_delay_s ~salt ~retry_delay_s ~max_delay_s k);
        attempt (k + 1)
      end
      else raise e
    in
    let drop () = try Unix.close fd with _ -> () in
    match Unix.connect fd (sockaddr_of addr) with
    | () -> (
        match Protocol.read_fd ?timeout_s:io_timeout_s fd with
        | Some (Protocol.Hello { meta; _ }) ->
            { fd; greeting = meta; next_id = 0; io_timeout_s }
        | Some (Protocol.Reply { ok = false; body; _ }) when is_busy body ->
            (* Shed at the in-flight cap: typed, and worth backing off
               for — the daemon is alive, just full. *)
            drop ();
            retry
              (Pqdb_error.Error
                 (Pqdb_error.Busy { site = "pqdb-serve"; detail = body }))
        | _ ->
            drop ();
            Pqdb_error.malformed ~source:"pqdb-serve-client"
              "server did not greet with a hello frame"
        | exception (Pqdb_error.Error (Pqdb_error.Timeout _) as e) ->
            drop ();
            retry e)
    | exception
        Unix.Unix_error
          ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN), _, _)
      when left > 0 ->
        drop ();
        Unix.sleepf (backoff_delay_s ~salt ~retry_delay_s ~max_delay_s k);
        attempt (k + 1)
    | exception e ->
        drop ();
        raise e
  in
  attempt 0

let greeting t = t.greeting

let gone detail =
  Pqdb_error.malformed ~source:"pqdb-serve-client" detail

let query ?timeout_s t spec =
  let timeout_s =
    match timeout_s with Some _ as s -> s | None -> t.io_timeout_s
  in
  let id = t.next_id in
  t.next_id <- id + 1;
  (* The whole round trip shares one deadline; a server wedged mid-reply
     surfaces as a typed [Timeout] rather than a hang.  Connection-level
     failures (reset, EOF mid-frame) come back typed too, so callers only
     ever see [Pqdb_error]. *)
  match
    Protocol.write_fd ?timeout_s t.fd (Protocol.Query { id; spec });
    let rec await () =
      match Protocol.read_fd ?timeout_s t.fd with
      | Some (Protocol.Reply { id = rid; ok; body }) when rid = id ->
          if (not ok) && is_busy body then
            Pqdb_error.error
              (Pqdb_error.Busy { site = "pqdb-serve"; detail = body })
          else (ok, body)
      | Some _ -> await ()
      | None -> gone "server closed the connection before replying"
    in
    await ()
  with
  | r -> r
  | exception (Pqdb_error.Error _ as e) -> raise e
  | exception End_of_file ->
      gone "server closed the connection before replying"
  | exception Unix.Unix_error (e, _, _) ->
      gone
        (Printf.sprintf "connection lost mid-query: %s" (Unix.error_message e))
  | exception Sys_error m ->
      gone (Printf.sprintf "connection lost mid-query: %s" m)

let close t =
  (try Protocol.write_fd ?timeout_s:t.io_timeout_s t.fd Protocol.Shutdown
   with _ -> ());
  (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with _ -> ());
  try Unix.close t.fd with _ -> ()
