module Protocol = Pqdb_distrib.Protocol
module Pqdb_error = Pqdb_runtime.Pqdb_error

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  greeting : string;
  mutable next_id : int;
}

let sockaddr_of = function
  | Server.Unix_socket path -> Unix.ADDR_UNIX path
  | Server.Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let domain_of = function
  | Server.Unix_socket _ -> Unix.PF_UNIX
  | Server.Tcp _ -> Unix.PF_INET

(* Retries make `pqdb query` usable the moment the daemon is forked:
   ECONNREFUSED / ENOENT just mean the socket is not bound yet. *)
let connect ?(retries = 0) ?(retry_delay_s = 0.2) addr =
  (* A daemon that stops between our frames must surface as EPIPE, not
     SIGPIPE-kill the client. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let rec attempt left =
    let fd = Unix.socket ~cloexec:true (domain_of addr) Unix.SOCK_STREAM 0 in
    match Unix.connect fd (sockaddr_of addr) with
    | () -> fd
    | exception
        Unix.Unix_error
          ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN), _, _)
      when left > 0 ->
        (try Unix.close fd with _ -> ());
        Unix.sleepf retry_delay_s;
        attempt (left - 1)
    | exception e ->
        (try Unix.close fd with _ -> ());
        raise e
  in
  let fd = attempt retries in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  match Protocol.read ic with
  | Some (Protocol.Hello { meta; _ }) ->
      { fd; ic; oc; greeting = meta; next_id = 0 }
  | _ ->
      (try Unix.close fd with _ -> ());
      Pqdb_error.malformed ~source:"pqdb-serve-client"
        "server did not greet with a hello frame"

let greeting t = t.greeting

let query t spec =
  let id = t.next_id in
  t.next_id <- id + 1;
  Protocol.write t.oc (Protocol.Query { id; spec });
  let rec await () =
    match Protocol.read t.ic with
    | Some (Protocol.Reply { id = rid; ok; body }) when rid = id -> (ok, body)
    | Some _ -> await ()
    | None ->
        Pqdb_error.malformed ~source:"pqdb-serve-client"
          "server closed the connection before replying"
  in
  await ()

let close t =
  (try Protocol.write t.oc Protocol.Shutdown with _ -> ());
  (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with _ -> ());
  try close_in_noerr t.ic with _ -> ()
