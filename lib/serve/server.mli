(** The resident [pqdb serve] daemon: one mmap'd database, one shared
    compiled-lineage cache, many sessions.

    The daemon loads a [.udbb] database once (the binary loader maps
    columns lazily, so the resident cost is the page cache's problem) and
    answers framed requests over a Unix-domain or loopback TCP socket,
    using {!Pqdb_distrib.Protocol}'s CRC-framed [Query]/[Reply] messages.
    Repeated or incremental [conf] queries hit the {!Pqdb_montecarlo.Memo}
    cache and skip normalization and compilation entirely, going straight
    to {!Pqdb_montecarlo.Compile.solve}.

    {2 Request language}

    One request per [Query] frame, answered by one [Reply]:

    {ul
    {- [conf <relation> [eps=F] [delta=F] [seed=N] [fuel=N] [deadline=SECS]
       [trials=N]] — per-tuple confidence for every possible tuple of the
       relation.  The reply body is the batch output contract verbatim: one
       ["<index> %h-est %h-lo %h-hi <trials>"] line per tuple.  Defaults:
       [eps=0.05], [delta=0.01], [seed=42], fuel
       {!Pqdb_montecarlo.Compile.default_fuel}.  Deterministic per [seed]:
       a warm (cached) run is byte-identical to a cold one.  [deadline=] /
       [trials=] give the query its own {!Pqdb_montecarlo.Budget}: past the
       cutoff the reply still arrives, carrying the sound (possibly
       a-priori) brackets reached so far — the degraded anytime answer —
       and the spend is charged against the session allowance too.

       With constraints asserted on the session, the reply carries
       {e conditioned} confidences [Pr(t ∈ q | c)] instead
       ({!Pqdb_conditioning.Condition}), same line format; the extra RNG
       lane for the shared [Pr(c)] denominator is split deterministically
       from the same [seed], and every cache entry is salted with the
       constraint-set fingerprint, so warm conditioned replies are
       byte-identical to cold ones and can never be served from (or leak
       into) unconditioned entries.  An unsatisfiable constraint set gets
       an [ok = false] reply carrying the typed
       {!Pqdb_runtime.Pqdb_error.Unsatisfiable_condition} message.}
    {- [assert <constraint>] — parse ({!Pqdb_lang.Qparser.parse_constraint})
       and add one constraint to {e this session's} set:
       [fd[K -> D](table)], [empty(q)] (denial) or [(q)] (holds).
       Constraint state is per session, never global; sessions conditioning
       differently share the daemon and its cache safely.}
    {- [retract] — clear the session's constraint set; subsequent [conf]
       replies are byte-identical to a session that never asserted.}
    {- [stats] — server and cache counters, one [key value...] line each
       (cache hits / misses / evictions, sessions, queries, errors).}
    {- [shutdown] — reply, then stop the daemon cleanly.}}

    Bad requests get an [ok = false] reply carrying the rendered error;
    the session survives.

    {2 Admission control}

    When the configuration carries session limits, every session draws its
    [conf] sampling from an own {!Pqdb_montecarlo.Budget} (trial cap and/or
    wall-clock deadline): queries degrade anytime-style as the budget
    drains, and a session whose budget is exhausted has further [conf]
    requests refused at admission.  An unconfigured server passes no budget
    at all — the bit-identical, never-degrading path.

    {2 Overload and fault behavior}

    Sessions do frame I/O directly over the socket with [select]-guarded
    deadlines: [io_timeout_s] bounds each frame write, [idle_timeout_s]
    bounds the wait for a session's next request (beyond it the session is
    {e reaped}), and a [watchdog_s] thread shuts down the socket of any
    session stuck executing one request longer than that, so a stalled
    query can not wedge its peer.  With [max_sessions] set, a connection
    arriving while that many sessions are in flight is {e shed}: it gets
    one immediate [ok = false] reply whose body starts with ["busy:"]
    (surfaced by {!Pqdb_serve.Client} as a typed [Busy]), then the
    connection closes — the daemon never queues unboundedly.  Shed and
    reap totals are reported in {!stats} and the [stats] request.

    The accept loop fires the ["serve.accept"] fault point per connection
    (an injected fault drops that connection and the server carries on),
    and every request fires ["serve.session"]; session frame I/O fires the
    protocol's ["distrib.send"]/["distrib.recv"] sites. *)

type listen = Unix_socket of string | Tcp of int
(** Where to listen: a Unix-domain socket path, or a TCP port bound on
    loopback only. *)

val pp_listen : listen -> string

type config = {
  db_path : string;  (** the [.udbb] (or directory) database to serve *)
  listen : listen;
  cache_entries : int;  (** compiled-lineage cache entry cap (LRU) *)
  session_trials : int option;  (** per-session trial allowance *)
  session_deadline_s : float option;  (** per-session wall-clock allowance *)
  io_timeout_s : float option;
      (** per-frame write (and greeting) deadline on session sockets *)
  idle_timeout_s : float option;
      (** max wait for a session's next request before it is reaped;
          defaults to [io_timeout_s] when unset *)
  max_sessions : int option;
      (** in-flight session cap; excess connections are shed with a typed
          busy reply instead of queueing *)
  watchdog_s : float option;
      (** wedged-session threshold: one request executing longer than this
          gets its socket shut down *)
}

type stats = {
  sessions : int;  (** sessions accepted *)
  queries : int;  (** query frames handled *)
  errors : int;  (** requests answered with [ok = false] or torn frames *)
  dropped : int;  (** connections dropped at accept (injected faults) *)
  shed : int;  (** connections refused with a busy reply at the cap *)
  reaped : int;  (** sessions closed by idle timeout or the watchdog *)
  cache : Pqdb_montecarlo.Memo.stats;
}

type t

val create : config -> t
(** Load the database and build the (empty) cache; no socket yet.
    @raise Invalid_argument when [cache_entries < 1], [max_sessions < 1]
    or a non-positive timeout; database load errors propagate. *)

val run : ?ready:(unit -> unit) -> t -> stats
(** Bind, call [ready] (e.g. print a readiness line), and serve until a
    [shutdown] request.  Returns the final counters.  The listening socket
    (and a Unix socket path) are cleaned up on exit. *)

val serve : ?ready:(unit -> unit) -> config -> stats
(** [create] + [run]. *)

val stats : t -> stats

type session
(** Per-connection state: the active constraint set and its compiled
    lineage.  Socket sessions get one automatically; in-process callers
    pass one to [dispatch] to use [assert]/[retract]/conditioned [conf]. *)

val new_session : unit -> session
(** A fresh session with no constraints. *)

val dispatch :
  t -> ?budget:Pqdb_montecarlo.Budget.t -> ?session:session -> string ->
  string
(** Handle one request in-process (no socket): the reply body on success.
    Exposed for tests and the in-process warm/cold bench.  Without a
    [session], [assert]/[retract] are refused and [conf] is unconditioned.
    @raise Failure with the message an [ok = false] reply would carry. *)
