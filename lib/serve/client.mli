(** Client side of the [pqdb serve] protocol: connect, submit request
    specs, read reply bodies.  Used by the [pqdb query] subcommand and the
    serve tests. *)

type t

val connect : ?retries:int -> ?retry_delay_s:float -> Server.listen -> t
(** Connect and consume the server's hello greeting.  [retries] (default 0)
    extra attempts are made when the socket is not there yet (connection
    refused / path absent), [retry_delay_s] (default 0.2) apart — enough
    for "fork the daemon, then query it" scripts.
    @raise Unix.Unix_error when the last attempt fails;
    @raise Pqdb_runtime.Pqdb_error.Error ([Malformed_input]) when the peer
    is not a pqdb-serve daemon. *)

val greeting : t -> string
(** The server's hello metadata (database path banner). *)

val query : t -> string -> bool * string
(** Submit one request spec, wait for its reply: [(ok, body)] where [body]
    is the result on [ok = true] and the rendered error otherwise.
    @raise Pqdb_runtime.Pqdb_error.Error ([Malformed_input]) if the server
    vanishes mid-reply. *)

val close : t -> unit
(** Send a polite shutdown-of-session frame and close the connection (the
    daemon keeps running; use the [shutdown] request spec to stop it). *)
