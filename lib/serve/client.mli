(** Client side of the [pqdb serve] protocol: connect, submit request
    specs, read reply bodies.  Used by the [pqdb query] subcommand and the
    serve tests. *)

type t

val backoff_delay_s :
  ?salt:int -> retry_delay_s:float -> max_delay_s:float -> int -> float
(** The delay before retry attempt [k] (0-based): [retry_delay_s * 2^k]
    capped at [max_delay_s], scaled into [[0.5, 1.0)] of itself by a
    deterministic (Weyl-sequence) jitter of [salt ⊕ k].  Delegates to
    {!Pqdb_distrib.Dial.backoff_delay_s} — one backoff law for every
    socket client.  [salt] (default 0: the attempt-only jitter) is seeded
    per connection by {!connect} with pid ⊕ fd, so a fleet of clients
    retrying together spreads out instead of thundering in lockstep.
    Exposed for tests. *)

val connect :
  ?retries:int -> ?retry_delay_s:float -> ?max_delay_s:float ->
  ?io_timeout_s:float -> Server.listen -> t
(** Connect and consume the server's hello greeting.  [retries]
    (default 0) extra attempts are made when the socket is not there yet
    (connection refused / path absent), when the greeting times out, or
    when the daemon sheds the connection with a busy reply; attempt [k]
    backs off {!backoff_delay_s}[ ~retry_delay_s ~max_delay_s k] —
    capped exponential (base [retry_delay_s], default 0.2; cap
    [max_delay_s], default 2.0) with deterministic jitter.  [io_timeout_s]
    bounds every frame read/write on the connection (greeting included);
    unset means block.
    @raise Unix.Unix_error when the last attempt fails to connect;
    @raise Pqdb_runtime.Pqdb_error.Error [(Busy _)] when the daemon shed
    the last attempt, [(Timeout _)] when its greeting timed out, or
    [(Malformed_input _)] when the peer is not a pqdb-serve daemon. *)

val greeting : t -> string
(** The server's hello metadata (database path banner). *)

val query : ?timeout_s:float -> t -> string -> bool * string
(** Submit one request spec, wait for its reply: [(ok, body)] where [body]
    is the result on [ok = true] and the rendered error otherwise.
    [timeout_s] (default: the connection's [io_timeout_s]) bounds the
    whole round trip.  Every failure is typed:
    @raise Pqdb_runtime.Pqdb_error.Error [(Timeout _)] past the deadline,
    [(Busy _)] when the daemon shed the request, or [(Malformed_input _)]
    when the server vanished or sent a torn frame. *)

val close : t -> unit
(** Send a polite shutdown-of-session frame and close the connection (the
    daemon keeps running; use the [shutdown] request spec to stop it). *)
