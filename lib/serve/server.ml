module Faultpoint = Pqdb_runtime.Faultpoint
module Pqdb_error = Pqdb_runtime.Pqdb_error
module Protocol = Pqdb_distrib.Protocol
module Cset = Pqdb_conditioning.Constraint_set
module Condition = Pqdb_conditioning.Condition
module Qparser = Pqdb_lang.Qparser
open Pqdb_numeric
open Pqdb_urel
open Pqdb_montecarlo

type listen = Unix_socket of string | Tcp of int

let pp_listen = function
  | Unix_socket path -> Printf.sprintf "unix:%s" path
  | Tcp port -> Printf.sprintf "tcp:127.0.0.1:%d" port

type config = {
  db_path : string;
  listen : listen;
  cache_entries : int;
  session_trials : int option;
  session_deadline_s : float option;
  io_timeout_s : float option;
  idle_timeout_s : float option;
  max_sessions : int option;
  watchdog_s : float option;
}

type stats = {
  sessions : int;
  queries : int;
  errors : int;
  dropped : int;
  shed : int;
  reaped : int;
  cache : Memo.stats;
}

(* One live session, as the watchdog sees it.  [busy_since = 0.] means the
   session is between requests; a positive value is the wall-clock start of
   the request it is executing. *)
type slot = {
  sfd : Unix.file_descr;
  mutable busy_since : float;
  mutable wedged : bool;
}

type t = {
  config : config;
  udb : Udb.t;
  cache : Memo.t;
  (* Query execution is serialized: the W-table alias cache fills lazily
     during DNF preparation and is not safe under concurrent writers, and
     the target container is single-core anyway.  Sessions stay concurrent
     for connection handling; only the engine is exclusive. *)
  engine : Mutex.t;
  state : Mutex.t;  (* counters, slots and active below *)
  mutable sessions : int;
  mutable queries : int;
  mutable errors : int;
  mutable dropped : int;
  mutable shed : int;
  mutable reaped : int;
  mutable active : int;
  mutable next_sid : int;
  slots : (int, slot) Hashtbl.t;
  running : bool Atomic.t;
  mutable listen_fd : Unix.file_descr option;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let stats t =
  with_lock t.state (fun () ->
      {
        sessions = t.sessions;
        queries = t.queries;
        errors = t.errors;
        dropped = t.dropped;
        shed = t.shed;
        reaped = t.reaped;
        cache = Memo.stats t.cache;
      })

(* ------------------------------------------------------------------ *)
(* Session constraint state.                                           *)

(* The active constraint set is per session, never global: two clients
   conditioning differently share the daemon (and its Memo — entries are
   salted by constraint-set fingerprint, so they never collide) without
   seeing each other's ASSERTs.  [compiled] is the set's lineage against
   the served database, built lazily on the first conditioned [conf] and
   dropped whenever the set changes. *)
type session = {
  mutable cset : Cset.t;
  mutable compiled : Condition.compiled option;
}

let new_session () = { cset = Cset.empty; compiled = None }

(* ------------------------------------------------------------------ *)
(* Request language.                                                   *)

let usage =
  "requests: conf <relation> [eps=F] [delta=F] [seed=N] [fuel=N] \
   [deadline=SECS] [trials=N] | assert <constraint> | retract | stats | \
   shutdown"

let fail fmt = Printf.ksprintf failwith fmt

let parse_kv ~relation args =
  let eps = ref 0.05 and delta = ref 0.01 in
  let seed = ref 42 and fuel = ref None in
  let q_deadline = ref None and q_trials = ref None in
  List.iter
    (fun arg ->
      match String.index_opt arg '=' with
      | None -> fail "bad argument %S (expected key=value); %s" arg usage
      | Some i -> (
          let k = String.sub arg 0 i in
          let v = String.sub arg (i + 1) (String.length arg - i - 1) in
          let float_v () =
            match float_of_string_opt v with
            | Some f when f > 0. && f < 1. -> f
            | _ -> fail "%s must be a float in (0, 1), got %S" k v
          in
          let pos_float_v () =
            match float_of_string_opt v with
            | Some f when f > 0. && Float.is_finite f -> f
            | _ -> fail "%s must be a positive float, got %S" k v
          in
          let int_v ~min =
            match int_of_string_opt v with
            | Some n when n >= min -> n
            | _ -> fail "%s must be an integer >= %d, got %S" k min v
          in
          match k with
          | "eps" -> eps := float_v ()
          | "delta" -> delta := float_v ()
          | "seed" -> seed := int_v ~min:0
          | "fuel" -> fuel := Some (int_v ~min:0)
          | "deadline" -> q_deadline := Some (pos_float_v ())
          | "trials" -> q_trials := Some (int_v ~min:1)
          | _ -> fail "unknown option %S for conf %s" k relation))
    args;
  (!eps, !delta, !seed, !fuel, !q_deadline, !q_trials)

(* The conf body reuses the batch output contract verbatim — one
   "%d %h %h %h %d" line per tuple (index, estimate, lo, hi, trials) — so
   a serve reply is byte-comparable against `pqdb batch` output and against
   itself across warm and cold runs. *)
let run_conf t ?budget ~relation ~eps ~delta ~seed ~fuel () =
  let u =
    match Udb.find t.udb relation with
    | u -> u
    | exception Not_found ->
        fail "unknown relation %S (database has: %s)" relation
          (String.concat ", " (Udb.names t.udb))
  in
  let w = Udb.wtable t.udb in
  let sets = Array.of_list (List.map snd (Urelation.clauses_by_tuple u)) in
  let n = Array.length sets in
  let rngs = Rng.split_n (Rng.create ~seed) n in
  let buf = Buffer.create (64 * (n + 1)) in
  for i = 0 to n - 1 do
    let tree = Memo.find_or_compile t.cache ?fuel w sets.(i) in
    let o = Compile.solve ?budget rngs.(i) tree ~eps ~delta in
    Printf.bprintf buf "%d %h %h %h %d\n" i o.Compile.value o.Compile.lo
      o.Compile.hi o.Compile.trials
  done;
  Buffer.contents buf

(* Conditioned variant: same output contract, same [seed]-deterministic RNG
   discipline (one extra lane, past the per-tuple ones, feeds the shared
   denominator), with every cache entry salted by the constraint-set
   fingerprint inside {!Condition.solve_clauses} — a warm conditioned reply
   is byte-identical to its cold run, and can never be served from an
   unconditioned entry (or vice versa). *)
let run_conf_conditioned t ?budget ~compiled ~relation ~eps ~delta ~seed
    ~fuel () =
  let u =
    match Udb.find t.udb relation with
    | u -> u
    | exception Not_found ->
        fail "unknown relation %S (database has: %s)" relation
          (String.concat ", " (Udb.names t.udb))
  in
  let w = Udb.wtable t.udb in
  let sets = Array.of_list (List.map snd (Urelation.clauses_by_tuple u)) in
  let n = Array.length sets in
  let rngs = Rng.split_n (Rng.create ~seed) (n + 1) in
  let den =
    Condition.solve_denominator ?budget ?fuel ~cache:t.cache rngs.(n) w
      compiled ~eps ~delta
  in
  let buf = Buffer.create (64 * (n + 1)) in
  for i = 0 to n - 1 do
    let e =
      Condition.solve_clauses ?budget ?fuel ~cache:t.cache rngs.(i) w
        compiled den sets.(i) ~eps ~delta
    in
    Printf.bprintf buf "%d %h %h %h %d\n" i e.Condition.value e.Condition.lo
      e.Condition.hi e.Condition.trials
  done;
  Buffer.contents buf

(* The session's compiled constraint lineage, built on first conditioned
   use.  Must run under the engine lock: compilation evaluates the member
   queries against the shared database. *)
let compiled_constraints t sess =
  match sess.compiled with
  | Some c -> c
  | None ->
      let c = Condition.compile t.udb sess.cset in
      sess.compiled <- Some c;
      c

let stats_body t =
  let s = stats t in
  let w = Udb.wtable t.udb in
  Printf.sprintf
    "db %s\n\
     relations %d wtable-uid %d wtable-gen %d\n\
     cache capacity %d entries %d hits %d misses %d evictions %d\n\
     sessions %d queries %d errors %d dropped %d shed %d reaped %d\n"
    t.config.db_path
    (List.length (Udb.names t.udb))
    (Wtable.uid w) (Wtable.generation w) (Memo.capacity t.cache)
    s.cache.Memo.entries s.cache.Memo.hits s.cache.Memo.misses
    s.cache.Memo.evictions s.sessions s.queries s.errors s.dropped s.shed
    s.reaped

let stop t =
  Atomic.set t.running false;
  (* Wake the accept loop: shutdown on a listening socket makes a blocked
     accept return immediately (EINVAL on Linux), without the fd-reuse race
     a close from another thread would risk. *)
  match t.listen_fd with
  | Some fd -> ( try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with _ -> ())
  | None -> ()

(* One request.  [Ok body] becomes an ok reply; raising becomes an err
   reply with the rendered message — sessions survive their own bad
   requests.  Fires ["serve.session"] per request, so chaos runs can
   delay/stall/fail query handling itself (not just the socket I/O around
   it); an injected raise is just another err reply. *)
let dispatch t ?budget ?session spec =
  Faultpoint.fire "serve.session";
  match String.split_on_char ' ' spec |> List.filter (fun s -> s <> "") with
  | [] -> fail "empty request; %s" usage
  | "stats" :: rest ->
      if rest <> [] then fail "stats takes no arguments";
      stats_body t
  | "shutdown" :: rest ->
      if rest <> [] then fail "shutdown takes no arguments";
      stop t;
      "shutting down\n"
  | "assert" :: rest -> (
      let sess =
        match session with
        | Some s -> s
        | None -> fail "assert needs a session (per-connection state)"
      in
      if rest = [] then fail "assert needs a constraint; %s" usage;
      let text = String.concat " " rest in
      let c =
        match Qparser.parse_constraint text with
        | c -> c
        | exception Qparser.Error (msg, pos) ->
            fail "bad constraint (at offset %d): %s" pos msg
      in
      match Cset.add sess.cset c with
      | set ->
          if not (Cset.equal set sess.cset) then begin
            sess.cset <- set;
            sess.compiled <- None
          end;
          Printf.sprintf "asserted; %d active\n" (Cset.cardinal sess.cset)
      | exception Invalid_argument msg -> fail "bad constraint: %s" msg)
  | "retract" :: rest -> (
      if rest <> [] then
        fail "retract takes no arguments (it clears the session's set)";
      match session with
      | Some sess ->
          sess.cset <- Cset.empty;
          sess.compiled <- None;
          "retracted; 0 active\n"
      | None -> fail "retract needs a session (per-connection state)")
  | "conf" :: relation :: args ->
      (match budget with
      | Some b when Budget.exhausted b ->
          fail "session budget exhausted (admission refused)"
      | _ -> ());
      let eps, delta, seed, fuel, q_deadline, q_trials =
        parse_kv ~relation args
      in
      (* A query-level [deadline=]/[trials=] makes its own budget: the
         anytime machinery returns the sound (possibly a-priori) bracket at
         cutoff instead of failing, which is exactly the degraded answer
         the client's --timeout asks for.  Whatever the query spends is
         then charged to the session's allowance too. *)
      let q_budget =
        match (q_deadline, q_trials) with
        | None, None -> budget
        | deadline_s, max_trials ->
            Some (Budget.create ?deadline_s ?max_trials ())
      in
      (* An empty (or absent) constraint set takes the legacy path — same
         code, same cache keys, byte-identical replies to a pre-conditioning
         daemon. *)
      let conditioned =
        match session with
        | Some sess when not (Cset.is_empty sess.cset) -> Some sess
        | _ -> None
      in
      let body =
        with_lock t.engine (fun () ->
            match conditioned with
            | Some sess ->
                let compiled = compiled_constraints t sess in
                run_conf_conditioned t ?budget:q_budget ~compiled ~relation
                  ~eps ~delta ~seed ~fuel ()
            | None ->
                run_conf t ?budget:q_budget ~relation ~eps ~delta ~seed ~fuel
                  ())
      in
      (match (budget, q_budget) with
      | Some sb, Some qb when sb != qb -> Budget.spend sb (Budget.spent qb)
      | _ -> ());
      body
  | "conf" :: [] -> fail "conf needs a relation name; %s" usage
  | verb :: _ -> fail "unknown request %S; %s" verb usage

(* ------------------------------------------------------------------ *)
(* Sessions.                                                           *)

let bump t f =
  with_lock t.state (fun () -> f t)

(* Session I/O runs directly over the fd ({!Protocol.read_fd}) so deadlines
   actually bite: [io_timeout_s] bounds every frame write (and the greeting),
   [idle_timeout_s] bounds the wait for the next request — a session silent
   longer than that is reaped.  Closing happens under the state lock, paired
   with slot removal, so the watchdog can never shut down a recycled fd. *)
let session t sid fd =
  bump t (fun t -> t.sessions <- t.sessions + 1);
  let sess = new_session () in
  let slot = { sfd = fd; busy_since = 0.; wedged = false } in
  with_lock t.state (fun () -> Hashtbl.replace t.slots sid slot);
  (* Admission control: each session draws conf trials from its own budget,
     sized by the server configuration.  Unconfigured servers pass no
     budget at all — the bit-identical, never-degrading path. *)
  let budget =
    match (t.config.session_trials, t.config.session_deadline_s) with
    | None, None -> None
    | trials, deadline ->
        Some (Budget.create ?max_trials:trials ?deadline_s:deadline ())
  in
  let io = t.config.io_timeout_s in
  let idle =
    match t.config.idle_timeout_s with Some _ as i -> i | None -> io
  in
  let finally () =
    with_lock t.state (fun () ->
        Hashtbl.remove t.slots sid;
        t.active <- t.active - 1;
        (try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ());
        try Unix.close fd with _ -> ())
  in
  Fun.protect ~finally (fun () ->
      Protocol.write_fd ?timeout_s:io fd
        (Protocol.Hello
           {
             meta = Printf.sprintf "pqdb-serve db=%s" t.config.db_path;
             probe = "serve/1";
             source = None;
           });
      let rec loop () =
        if Atomic.get t.running then
          match Protocol.read_fd ?timeout_s:idle fd with
          | None | Some Protocol.Shutdown -> ()
          | Some (Protocol.Query { id; spec }) ->
              bump t (fun t -> t.queries <- t.queries + 1);
              slot.busy_since <- Unix.gettimeofday ();
              let reply =
                match dispatch t ?budget ~session:sess spec with
                | body -> Protocol.Reply { id; ok = true; body }
                | exception e ->
                    bump t (fun t -> t.errors <- t.errors + 1);
                    let detail =
                      match e with
                      | Failure m -> m
                      | Pqdb_error.Error err -> Pqdb_error.to_string err
                      | e -> Printexc.to_string e
                    in
                    Protocol.Reply { id; ok = false; body = detail }
              in
              slot.busy_since <- 0.;
              if not slot.wedged then begin
                Protocol.write_fd ?timeout_s:io fd reply;
                loop ()
              end
          | Some
              ( Protocol.Hello _ | Protocol.Order _ | Protocol.Outcome _
              | Protocol.Failed _ | Protocol.Lease _ | Protocol.Reply _ ) ->
              (* Out-of-protocol traffic: drop the session. *)
              ()
          | Some Protocol.Heartbeat -> loop ()
      in
      try loop () with
      | Pqdb_error.Error (Pqdb_error.Timeout _) ->
          (* Idle past the allowance, or a peer wedged mid-frame. *)
          bump t (fun t -> t.reaped <- t.reaped + 1)
      | Pqdb_error.Error
          (Pqdb_error.Malformed_input _ | Pqdb_error.Injected _) ->
          (* Torn or corrupt frame: the peer is gone or broken. *)
          bump t (fun t -> t.errors <- t.errors + 1)
      | Sys_error _ | End_of_file | Unix.Unix_error _ -> ())

(* Graceful shedding: over the in-flight limit the daemon still answers —
   one immediate typed busy reply, then the connection is closed.  Sent
   from a throwaway thread with a short deadline so a shed peer that
   refuses to read cannot wedge the accept loop. *)
let shed_session t fd =
  let cap = Option.value ~default:0 t.config.max_sessions in
  ignore
    (Thread.create
       (fun () ->
         (try
            Protocol.write_fd
              ~timeout_s:(Option.value ~default:1.0 t.config.io_timeout_s)
              fd
              (Protocol.Reply
                 {
                   id = -1;
                   ok = false;
                   body =
                     Printf.sprintf
                       "busy: %d sessions in flight (limit); retry with \
                        backoff"
                       cap;
                 })
          with _ -> ());
         (try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ());
         try Unix.close fd with _ -> ())
       ())

(* ------------------------------------------------------------------ *)
(* Accept loop.                                                        *)

(* Is anyone actually home behind this unix socket?  A SIGKILL'd daemon
   cannot unlink its socket, so the path outlives it and a naive bind gets
   EADDRINUSE forever.  The connect-probe disambiguates: ECONNREFUSED
   means the listener is gone (the socket is stale — safe to unlink and
   rebind), a successful connect means a live daemon owns the path (and
   the probe is closed without speaking).  Only [ECONNREFUSED] proves
   staleness; any other outcome is treated as live/unknown and the path
   is left alone. *)
let socket_stale path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let finish r =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    r
  in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> finish false
  | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> finish true
  | exception _ -> finish false

let bind_listen = function
  | Unix_socket path ->
      (match Unix.lstat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } ->
          if socket_stale path then (
            try Unix.unlink path with Unix.Unix_error _ -> ())
          else
            failwith
              (Printf.sprintf
                 "socket %s is owned by a running daemon; stop it first \
                  (or point --socket elsewhere)"
                 path)
      | _ -> ()
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.bind fd (Unix.ADDR_UNIX path)
       with e -> Unix.close fd; raise e);
      Unix.listen fd 16;
      fd
  | Tcp port ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
       with e -> Unix.close fd; raise e);
      Unix.listen fd 16;
      fd

let create config =
  if config.cache_entries < 1 then
    invalid_arg "Server.create: cache_entries must be >= 1";
  let positive name = function
    | Some s when s <= 0. ->
        invalid_arg (Printf.sprintf "Server.create: %s must be positive" name)
    | _ -> ()
  in
  positive "io_timeout_s" config.io_timeout_s;
  positive "idle_timeout_s" config.idle_timeout_s;
  positive "watchdog_s" config.watchdog_s;
  (match config.max_sessions with
  | Some n when n < 1 ->
      invalid_arg "Server.create: max_sessions must be >= 1"
  | _ -> ());
  let udb = Udb_io.load config.db_path in
  {
    config;
    udb;
    cache = Memo.create ~entries:config.cache_entries ();
    engine = Mutex.create ();
    state = Mutex.create ();
    sessions = 0;
    queries = 0;
    errors = 0;
    dropped = 0;
    shed = 0;
    reaped = 0;
    active = 0;
    next_sid = 0;
    slots = Hashtbl.create 16;
    running = Atomic.make true;
    listen_fd = None;
  }

(* Wedged-session watchdog: a request executing longer than [watchdog_s]
   (a stalled fault, a runaway query) gets its socket shut down, which
   unblocks the peer immediately with an EOF; the session thread itself
   notices on its next write.  Runs only when configured. *)
let watchdog t w =
  ignore
    (Thread.create
       (fun () ->
         let period = Float.max 0.01 (Float.min (w /. 2.) 0.25) in
         while Atomic.get t.running do
           Thread.delay period;
           let now = Unix.gettimeofday () in
           with_lock t.state (fun () ->
               Hashtbl.iter
                 (fun _ slot ->
                   if
                     (not slot.wedged)
                     && slot.busy_since > 0.
                     && now -. slot.busy_since > w
                   then begin
                     slot.wedged <- true;
                     t.reaped <- t.reaped + 1;
                     try Unix.shutdown slot.sfd Unix.SHUTDOWN_ALL
                     with _ -> ()
                   end)
                 t.slots)
         done)
       ())

let run ?(ready = fun () -> ()) t =
  (* A peer that hangs up mid-reply must surface as EPIPE in its session
     thread, not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd = bind_listen t.config.listen in
  t.listen_fd <- Some listen_fd;
  (match t.config.watchdog_s with Some w -> watchdog t w | None -> ());
  ready ();
  let rec accept_loop () =
    if Atomic.get t.running then begin
      (match Unix.accept ~cloexec:true listen_fd with
      | fd, _ -> (
          (* The CI fault matrix arms this site: an injected fault at
             accept drops that one connection and the server carries on —
             the same containment a transient accept-time error gets. *)
          match Faultpoint.fire "serve.accept" with
          | () -> (
              (* Bounded in-flight sessions: claim a slot under the state
                 lock or shed the connection with a typed busy reply. *)
              let admitted =
                with_lock t.state (fun () ->
                    match t.config.max_sessions with
                    | Some cap when t.active >= cap ->
                        t.shed <- t.shed + 1;
                        None
                    | _ ->
                        t.active <- t.active + 1;
                        let sid = t.next_sid in
                        t.next_sid <- sid + 1;
                        Some sid)
              in
              match admitted with
              | Some sid ->
                  ignore (Thread.create (fun () -> session t sid fd) ())
              | None -> shed_session t fd)
          | exception Pqdb_error.Error (Pqdb_error.Injected _) ->
              bump t (fun t -> t.dropped <- t.dropped + 1);
              try Unix.close fd with _ -> ())
      | exception Unix.Unix_error ((Unix.EINVAL | Unix.EBADF), _, _)
        when not (Atomic.get t.running) ->
          (* stop: shutdown on the listening socket woke us. *)
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listen_fd with _ -> ());
      match t.config.listen with
      | Unix_socket path ->
          (try Unix.unlink path with Unix.Unix_error _ -> ())
      | Tcp _ -> ())
    accept_loop;
  stats t

let serve ?ready config = run ?ready (create config)
