type t = Value.t array

let of_list = Array.of_list
let of_array = Array.copy
let to_list = Array.to_list
let to_array = Array.copy
let arity = Array.length
let get t i = t.(i)
let get_named schema t name = t.(Schema.index schema name)
let project t positions = Array.of_list (List.map (Array.get t) positions)
let concat = Array.append

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i >= la then 0
      else begin
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
      end
    in
    go 0
  end

let equal a b = compare a b = 0

let hash t =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 t land max_int

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

let pp fmt t =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
       Value.pp)
    (to_list t)
