(** Tuples: positional value vectors interpreted against a {!Schema}. *)

type t

val of_list : Value.t list -> t
val of_array : Value.t array -> t
val to_list : t -> Value.t list
val to_array : t -> Value.t array
(** The returned array is a copy; tuples are immutable. *)

val arity : t -> int
val get : t -> int -> Value.t
val get_named : Schema.t -> t -> string -> Value.t
(** @raise Not_found when the attribute is absent. *)

val project : t -> int list -> t
(** Select positions in the given order. *)

val concat : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Compatible with {!equal} (built on {!Value.hash}). *)

module Table : Hashtbl.S with type key = t
(** Hash tables keyed directly on tuples — the join/group keys of the hash
    joins in [Algebra] and [Translate].  Keys are compared with {!equal}, so
    cross-type numerically-equal values match and no string rendering is
    involved. *)

val pp : Format.formatter -> t -> unit
