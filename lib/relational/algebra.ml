type projection = Expr.t * string

let select pred r =
  Predicate.check (Relation.schema r) pred;
  Relation.filter (fun t -> Predicate.eval (Relation.schema r) t pred) r

let project cols r =
  let in_schema = Relation.schema r in
  List.iter (fun (e, _) -> Expr.check in_schema e) cols;
  let out_schema = Schema.of_list (List.map snd cols) in
  let exprs = List.map fst cols in
  Relation.map out_schema
    (fun t -> Tuple.of_list (List.map (Expr.eval in_schema t) exprs))
    r

let project_attrs names r = project (List.map (fun a -> (Expr.attr a, a)) names) r

let rename mapping r =
  let out_schema = Schema.rename (Relation.schema r) mapping in
  (* Positions are unchanged; only the schema header moves. *)
  Relation.map out_schema (fun t -> t) r

let product a b =
  let out_schema = Schema.concat (Relation.schema a) (Relation.schema b) in
  Relation.fold
    (fun ta acc ->
      Relation.fold
        (fun tb acc -> Relation.add acc (Tuple.concat ta tb))
        b acc)
    a (Relation.empty out_schema)

let join a b =
  let sa = Relation.schema a and sb = Relation.schema b in
  let shared = Schema.common sa sb in
  let sb_only =
    List.filter (fun x -> not (List.mem x shared)) (Schema.attributes sb)
  in
  let out_schema = Schema.of_list (Schema.attributes sa @ sb_only) in
  let sa_shared = List.map (Schema.index sa) shared in
  let sb_shared = List.map (Schema.index sb) shared in
  let sb_only_positions = List.map (Schema.index sb) sb_only in
  (* Hash b's tuples by their shared-attribute key tuple.  Tuple.Table
     compares keys with Value-aware equality, so no re-check is needed. *)
  let index = Tuple.Table.create (max 16 (Relation.cardinality b)) in
  Relation.iter
    (fun tb -> Tuple.Table.add index (Tuple.project tb sb_shared) tb)
    b;
  Relation.fold
    (fun ta acc ->
      List.fold_left
        (fun acc tb ->
          Relation.add acc
            (Tuple.concat ta (Tuple.project tb sb_only_positions)))
        acc
        (Tuple.Table.find_all index (Tuple.project ta sa_shared)))
    a (Relation.empty out_schema)

let theta_join pred a b = select pred (product a b)
let union = Relation.union
let diff = Relation.diff
let inter = Relation.inter

let group_by keys r =
  let schema = Relation.schema r in
  let positions = List.map (Schema.index schema) keys in
  let table = Tuple.Table.create 64 in
  let order = ref [] in
  Relation.iter
    (fun t ->
      let k = Tuple.project t positions in
      match Tuple.Table.find_opt table k with
      | Some group -> Tuple.Table.replace table k (Relation.add group t)
      | None ->
          order := k :: !order;
          Tuple.Table.add table k (Relation.add (Relation.empty schema) t))
    r;
  List.rev_map (fun k -> (k, Tuple.Table.find table k)) !order
