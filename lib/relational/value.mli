(** Typed atomic values stored in relations.

    The algebra of the paper allows arithmetic in selection conditions and in
    the argument lists of π and ρ (Section 2), and the [conf] operator adds a
    probability-valued column [P].  We therefore support exact rationals as a
    first-class value type so that [conf] can report exact probabilities and
    the division [P1/P2] in Example 2.2 stays exact. *)

open Pqdb_numeric

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Rat of Rational.t

(** {1 Construction and printing} *)

val int : int -> t
val float : float -> t
val str : string -> t
val bool : bool -> t
val rat : Rational.t -> t
val of_ints : int -> int -> t
(** [of_ints n d] is the exact rational [n/d]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val parse : string -> t
(** Best-effort literal parsing used by the CSV loader and the query lexer:
    integers, then rationals ([n/d]), then floats, then booleans, falling back
    to strings. *)

(** {1 Ordering} *)

val compare : t -> t -> int
(** Total order.  Numeric values ([Int], [Rat], [Float]) compare by numeric
    value across constructors; other types compare within their constructor,
    with an arbitrary fixed order between type families. *)

val equal : t -> t -> bool

val hash : t -> int
(** Compatible with {!equal} across constructors: numeric values hash through
    their float image, so [Int 1], [Rat 1/1] and [Float 1.] (which are
    [equal]) hash alike.  This is the key used by the hash joins — unlike the
    former [to_string] keys it can neither miss a cross-type match nor be
    fooled by ambiguous concatenation. *)

(** {1 Numeric coercions} *)

val to_float_opt : t -> float option
val to_rational_opt : t -> Rational.t option
(** [None] for non-numeric values and for [Float]s (which would need a lossy
    reinterpretation — use {!to_float_opt} for those paths). *)

val is_numeric : t -> bool

(** {1 Arithmetic}

    Numeric tower: [Int ⊂ Rat ⊂ Float].  [Int/Int] divides exactly into a
    [Rat]; any operation touching a [Float] returns a [Float].
    @raise Invalid_argument on non-numeric operands.
    @raise Division_by_zero accordingly. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
