open Pqdb_numeric

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Rat of Rational.t

let int n = Int n
let float f = Float f
let str s = Str s
let bool b = Bool b
let rat r = Rat r
let of_ints n d = Rat (Rational.of_ints n d)

let pp fmt = function
  | Int n -> Format.pp_print_int fmt n
  | Float f -> Format.fprintf fmt "%g" f
  | Str s -> Format.fprintf fmt "%s" s
  | Bool b -> Format.pp_print_bool fmt b
  | Rat r -> Rational.pp fmt r

let to_string v = Format.asprintf "%a" pp v

let parse s =
  match int_of_string_opt s with
  | Some n -> Int n
  | None -> begin
      match String.index_opt s '/' with
      | Some _ -> ( try Rat (Rational.of_string s) with _ -> Str s)
      | None -> begin
          match float_of_string_opt s with
          | Some f -> Float f
          | None -> begin
              match bool_of_string_opt s with
              | Some b -> Bool b
              | None -> Str s
            end
        end
    end

let to_float_opt = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | Rat r -> Some (Rational.to_float r)
  | Str _ | Bool _ -> None

let to_rational_opt = function
  | Int n -> Some (Rational.of_int n)
  | Rat r -> Some r
  | Float _ | Str _ | Bool _ -> None

let is_numeric = function
  | Int _ | Float _ | Rat _ -> true
  | Str _ | Bool _ -> false

(* Rank used to order values of different type families. *)
let rank = function
  | Int _ | Float _ | Rat _ -> 0
  | Str _ -> 1
  | Bool _ -> 2

let compare a b =
  match (a, b) with
  | Int x, Int y -> Stdlib.compare x y
  | Str x, Str y -> Stdlib.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | Rat x, Rat y -> Rational.compare x y
  | Int x, Rat y -> Rational.compare (Rational.of_int x) y
  | Rat x, Int y -> Rational.compare x (Rational.of_int y)
  | (Float _ | Int _ | Rat _), (Float _ | Int _ | Rat _) -> begin
      match (to_float_opt a, to_float_opt b) with
      | Some x, Some y -> Stdlib.compare x y
      | _ -> assert false
    end
  | _ -> Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

(* Equality is numeric across Int/Float/Rat (Int 1 = Float 1. = Rat 1/1), so
   numeric values must hash through a representation-independent image: their
   float value.  Rationals are kept in lowest terms, so equal rationals have
   identical floats; ints beyond 2^53 may collide with neighbours, which is
   harmless for hashing. *)
let hash v =
  match v with
  | Int _ | Float _ | Rat _ -> begin
      match to_float_opt v with
      | Some f -> Hashtbl.hash f
      | None -> assert false
    end
  | Str s -> Hashtbl.hash s
  | Bool b -> Hashtbl.hash b

let numeric_error op = invalid_arg ("Value." ^ op ^ ": non-numeric operand")

(* Apply a binary arithmetic operation with tower promotion. *)
let arith op fi fr ff a b =
  match (a, b) with
  | Int x, Int y -> fi x y
  | Rat x, Rat y -> Rat (fr x y)
  | Int x, Rat y -> Rat (fr (Rational.of_int x) y)
  | Rat x, Int y -> Rat (fr x (Rational.of_int y))
  | (Float _ | Int _ | Rat _), (Float _ | Int _ | Rat _) -> begin
      match (to_float_opt a, to_float_opt b) with
      | Some x, Some y -> Float (ff x y)
      | _ -> assert false
    end
  | _ -> numeric_error op

let add = arith "add" (fun x y -> Int (x + y)) Rational.add ( +. )
let sub = arith "sub" (fun x y -> Int (x - y)) Rational.sub ( -. )
let mul = arith "mul" (fun x y -> Int (x * y)) Rational.mul ( *. )

let div =
  arith "div"
    (fun x y ->
      if y = 0 then raise Division_by_zero
      else Rat (Rational.of_ints x y))
    Rational.div
    (fun x y -> x /. y)

let neg = function
  | Int n -> Int (-n)
  | Float f -> Float (-.f)
  | Rat r -> Rat (Rational.neg r)
  | Str _ | Bool _ -> numeric_error "neg"
